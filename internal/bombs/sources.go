package bombs

import "bytes"

// The bomb programs. Each `main` receives argc in r1 and argv in r2 per
// the crt0 convention; the trigger path calls `bomb` (libc BombRT), which
// prints BOOM and exits 42. Non-trigger paths return 0.

var registry = []*Bomb{
	// ── Symbolic Variable Declaration ────────────────────────────────
	{
		Name:        "time",
		Category:    Accuracy,
		Challenge:   ChSymbolicDecl,
		Description: "Employ time info in conditions for triggering a bomb",
		Paper:       [4]PaperOutcome{Es0, Es0, Es0, Es0},
		Trigger:     Input{Argv1: "1", TimeNow: 1735689600},
		Benign:      Input{Argv1: "1"},
		Source: `
main:
    mov r0, 6              ; time()
    syscall
    cmp r0, 1735689600
    jne .out
    call bomb
.out:
    mov r0, 0
    ret
`,
	},
	{
		Name:        "web",
		Category:    Accuracy,
		Challenge:   ChSymbolicDecl,
		Description: "Employ web contents in conditions for triggering a bomb",
		Paper:       [4]PaperOutcome{Es0, Es0, E, E},
		Trigger:     Input{Argv1: "1", Web: map[string]string{"http://evil.example/key": "open sesame"}},
		Benign:      Input{Argv1: "1"},
		Source: `
main:
    mov r0, 12             ; web_get(url, buf, 32)
    mov r1, url
    mov r2, buf
    mov r3, 32
    syscall
    cmp r0, 4
    jl .out
    mov r1, buf
    ld.b r3, [r1+0]
    cmp r3, 'o'
    jne .out
    ld.b r3, [r1+1]
    cmp r3, 'p'
    jne .out
    ld.b r3, [r1+2]
    cmp r3, 'e'
    jne .out
    ld.b r3, [r1+3]
    cmp r3, 'n'
    jne .out
    call bomb
.out:
    mov r0, 0
    ret

    .data
url: .asciz "http://evil.example/key"
buf: .space 32
`,
	},
	{
		Name:        "getpid",
		Category:    Accuracy,
		Challenge:   ChSymbolicDecl,
		Description: "Employ the return values of system calls in conditions",
		Paper:       [4]PaperOutcome{Es0, Es0, P, P},
		Trigger:     Input{Argv1: "1", Pid: 4960}, // 4960 % 97 == 13
		Benign:      Input{Argv1: "1"},
		Source: `
main:
    mov r0, 7              ; getpid()
    syscall
    mod r0, 97
    cmp r0, 13
    jne .out
    call bomb
.out:
    mov r0, 0
    ret
`,
	},
	{
		Name:        "arglen",
		Category:    Accuracy,
		Challenge:   ChSymbolicDecl,
		Description: "Employ the length of argv[1] in conditions",
		Paper:       [4]PaperOutcome{Es2, Es0, OK, OK},
		Trigger:     Input{Argv1: "abcdef"},
		Benign:      Input{Argv1: "a"},
		Source: `
main:
    cmp r1, 2
    jl .out
    ld.q r1, [r2+8]
    call strlen
    cmp r0, 6
    jne .out
    call bomb
.out:
    mov r0, 0
    ret
`,
	},

	// ── Covert Symbolic Propagation ──────────────────────────────────
	{
		Name:        "stack",
		Category:    Accuracy,
		Challenge:   ChCovertProp,
		Description: "Push symbolic values into the stack and pop out",
		Paper:       [4]PaperOutcome{Es1, OK, OK, OK},
		Trigger:     Input{Argv1: "39"},
		Benign:      Input{Argv1: "10"},
		Source: `
main:
    cmp r1, 2
    jl .out
    ld.q r1, [r2+8]
    call atoi
    push r0
    push 17
    pop r3
    pop r4
    cmp r4, 39
    jne .out
    call bomb
.out:
    mov r0, 0
    ret
`,
	},
	{
		Name:        "file",
		Category:    Accuracy,
		Challenge:   ChCovertProp,
		Description: "Save symbolic values to a file and then read back",
		Paper:       [4]PaperOutcome{Es2, Es2, E, Es2},
		Trigger:     Input{Argv1: "7"},
		Benign:      Input{Argv1: "1"},
		Source: `
main:
    cmp r1, 2
    jl .out
    ld.q r12, [r2+8]
    mov r1, r12
    call strlen
    mov r13, r0
    mov r0, 4              ; open("tmp.dat", write)
    mov r1, path
    mov r2, 1
    syscall
    mov r14, r0
    mov r0, 3              ; write(fd, argv1, len)
    mov r1, r14
    mov r2, r12
    mov r3, r13
    syscall
    mov r0, 5              ; close(fd)
    mov r1, r14
    syscall
    mov r0, 4              ; open("tmp.dat", read)
    mov r1, path
    mov r2, 0
    syscall
    mov r14, r0
    mov r0, 2              ; read(fd, buf, 16)
    mov r1, r14
    mov r2, buf
    mov r3, 16
    syscall
    mov r1, buf
    call atoi
    cmp r0, 7
    jne .out
    call bomb
.out:
    mov r0, 0
    ret

    .data
path: .asciz "tmp.dat"
buf:  .space 17
`,
	},
	{
		Name:        "kvstore",
		Category:    Accuracy,
		Challenge:   ChCovertProp,
		Description: "Save symbolic values via system call and then read back",
		Paper:       [4]PaperOutcome{Es2, Es2, P, P},
		Trigger:     Input{Argv1: "K"},
		Benign:      Input{Argv1: "A"},
		Source: `
main:
    cmp r1, 2
    jl .out
    ld.q r12, [r2+8]
    mov r0, 17             ; kv_put("slot", argv1, 1)
    mov r1, key
    mov r2, r12
    mov r3, 1
    syscall
    mov r0, 18             ; kv_get("slot", buf, 1)
    mov r1, key
    mov r2, buf
    mov r3, 1
    syscall
    mov r1, buf
    ld.b r3, [r1+0]
    cmp r3, 'K'
    jne .out
    call bomb
.out:
    mov r0, 0
    ret

    .data
key: .asciz "slot"
buf: .space 8
`,
	},
	{
		Name:        "exception",
		Category:    Accuracy,
		Challenge:   ChCovertProp,
		Description: "Change symbolic values in an exception (argv[1] = 0)",
		Paper:       [4]PaperOutcome{OK, Es1, E, Es2},
		Trigger:     Input{Argv1: "0"},
		Benign:      Input{Argv1: "5"},
		Source: `
handler:
    mov r6, flagcell
    mov r7, 1
    st.q [r6+0], r7
    ret

main:
    cmp r1, 2
    jl .out
    ld.q r1, [r2+8]
    call atoi
    mov r12, r0
    mov r0, 13             ; sighandler(handler)
    mov r1, handler
    syscall
    mov r3, 100
    div r3, r12            ; faults when argv[1] == 0
    mov r6, flagcell
    ld.q r7, [r6+0]
    cmp r7, 1
    jne .out
    call bomb
.out:
    mov r0, 0
    ret

    .data
flagcell: .quad 0
`,
	},
	{
		Name:        "fileexc",
		Category:    Accuracy,
		Challenge:   ChCovertProp,
		Description: "Change symbolic values in an file operation exception",
		Paper:       [4]PaperOutcome{Es2, Es2, Es2, Es2},
		Trigger:     Input{Argv1: "99"},
		Benign:      Input{Argv1: "55"},
		Source: `
main:
    cmp r1, 2
    jl .out
    ld.q r12, [r2+8]
    mov r0, 4              ; open(argv1, read)
    mov r1, r12
    mov r2, 0
    syscall
    cmp r0, -1
    jne .out               ; only the failure path mutates the value
    mov r1, r12            ; the error handler logs the value covertly
    call atoi
    mov r13, r0
    mov r0, 4              ; open("err.log", write)
    mov r1, epath
    mov r2, 1
    syscall
    mov r14, r0
    mov r6, ebuf
    st.q [r6+0], r13
    mov r0, 3              ; write(fd, ebuf, 8)
    mov r1, r14
    mov r2, ebuf
    mov r3, 8
    syscall
    mov r0, 5              ; close(fd)
    mov r1, r14
    syscall
    mov r0, 4              ; open("err.log", read)
    mov r1, epath
    mov r2, 0
    syscall
    mov r14, r0
    mov r0, 2              ; read(fd, ebuf2, 8)
    mov r1, r14
    mov r2, ebuf2
    mov r3, 8
    syscall
    mov r6, ebuf2
    ld.q r7, [r6+0]
    add r7, 1
    cmp r7, 100
    jne .out
    call bomb
.out:
    mov r0, 0
    ret

    .data
epath: .asciz "err.log"
ebuf:  .space 8
ebuf2: .space 8
`,
	},

	// ── Parallel Program ─────────────────────────────────────────────
	{
		Name:        "thread",
		Category:    Accuracy,
		Challenge:   ChParallel,
		Description: "Change symbolic values in multi-threads via pthread",
		Paper:       [4]PaperOutcome{OK, Es2, Es2, Es2},
		Trigger:     Input{Argv1: "13"},
		Benign:      Input{Argv1: "10"},
		Source: `
worker:
    ld.q r6, [r1+0]
    add  r6, 29
    st.q [r1+0], r6
    ret

main:
    cmp r1, 2
    jl .out
    ld.q r1, [r2+8]
    call atoi
    mov r6, cell
    st.q [r6+0], r0
    mov r0, 10             ; thread_create(worker, cell)
    mov r1, worker
    mov r2, cell
    syscall
    mov r1, r0
    mov r0, 11             ; thread_join(tid)
    syscall
    mov r6, cell
    ld.q r7, [r6+0]
    cmp r7, 42
    jne .out
    call bomb
.out:
    mov r0, 0
    ret

    .data
cell: .quad 0
`,
	},
	{
		Name:        "fork",
		Category:    Accuracy,
		Challenge:   ChParallel,
		Description: "Change symbolic values in multi-processes via fork/pipe",
		Paper:       [4]PaperOutcome{Es2, Es2, Es2, OK},
		Trigger:     Input{Argv1: "49"},
		Benign:      Input{Argv1: "10"},
		Source: `
main:
    cmp r1, 2
    jl .out
    ld.q r12, [r2+8]
    mov r0, 9              ; pipe(fds)
    mov r1, fds
    syscall
    mov r0, 8              ; fork()
    syscall
    cmp r0, 0
    je .child
    mov r0, 5              ; parent: close write end
    mov r1, fds
    ld.q r1, [r1+8]
    syscall
    mov r0, 2              ; read(rfd, buf, 1)
    mov r1, fds
    ld.q r1, [r1+0]
    mov r2, buf
    mov r3, 1
    syscall
    mov r1, buf
    ld.b r3, [r1+0]
    cmp r3, 99
    jne .out
    call bomb
.out:
    mov r0, 0
    ret
.child:
    mov r1, r12
    call atoi
    mul r0, 2
    add r0, 1
    mov r6, buf
    st.b [r6+0], r0
    mov r0, 3              ; write(wfd, buf, 1)
    mov r1, fds
    ld.q r1, [r1+8]
    mov r2, buf
    mov r3, 1
    syscall
    mov r0, 1
    mov r1, 0
    syscall

    .data
fds: .space 16
buf: .space 8
`,
	},

	// ── Symbolic Array ───────────────────────────────────────────────
	{
		Name:        "array1",
		Category:    Accuracy,
		Challenge:   ChSymbolicArray,
		Description: "Employ symbolic values as offsets for a level-one array",
		Paper:       [4]PaperOutcome{Es3, Es3, OK, OK},
		Trigger:     Input{Argv1: "6"},
		Benign:      Input{Argv1: "1"},
		Source: `
main:
    cmp r1, 2
    jl .out
    ld.q r1, [r2+8]
    call atoi
    cmp r0, 0
    jl .out
    cmp r0, 9
    jg .out
    mov r6, table
    add r6, r0
    ld.b r7, [r6+0]
    cmp r7, 77
    jne .out
    call bomb
.out:
    mov r0, 0
    ret

    .data
table: .byte 11, 22, 33, 44, 55, 66, 77, 88, 99, 10
`,
	},
	{
		Name:        "array2",
		Category:    Accuracy,
		Challenge:   ChSymbolicArray,
		Description: "Employ symbolic values as offsets for a level-two array",
		Paper:       [4]PaperOutcome{Es3, Es3, Es3, Es3},
		Trigger:     Input{Argv1: "3"}, // t1[3] = 7, t2[7] = 88
		Benign:      Input{Argv1: "1"},
		Source: `
main:
    cmp r1, 2
    jl .out
    ld.q r1, [r2+8]
    call atoi
    cmp r0, 0
    jl .out
    cmp r0, 9
    jg .out
    mov r6, t1
    add r6, r0
    ld.b r7, [r6+0]
    mov r6, t2
    add r6, r7
    ld.b r8, [r6+0]
    cmp r8, 88
    jne .out
    call bomb
.out:
    mov r0, 0
    ret

    .data
t1: .byte 4, 2, 9, 7, 0, 1, 3, 5, 8, 6
t2: .byte 10, 20, 30, 40, 50, 60, 70, 88, 90, 95
`,
	},

	// ── Contextual Symbolic Value ────────────────────────────────────
	{
		Name:        "filename",
		Category:    Accuracy,
		Challenge:   ChContextual,
		Description: "Employ symbolic values as the name of a file",
		Paper:       [4]PaperOutcome{Es2, Es3, Es2, Es2},
		Trigger:     Input{Argv1: "secret.key", Files: map[string][]byte{"secret.key": []byte("k")}},
		Benign:      Input{Argv1: "nosuch", Files: map[string][]byte{"secret.key": []byte("k")}},
		Source: `
main:
    cmp r1, 2
    jl .out
    ld.q r1, [r2+8]
    mov r2, 0
    mov r0, 4              ; open(argv1, read)
    syscall
    cmp r0, -1
    je .out
    call bomb
.out:
    mov r0, 0
    ret
`,
	},
	{
		Name:        "sysname",
		Category:    Accuracy,
		Challenge:   ChContextual,
		Description: "Employ symbolic values as the name of a system call",
		Paper:       [4]PaperOutcome{Es2, Es3, Es2, Es2},
		Trigger:     Input{Argv1: "6", TimeNow: 987654321},
		Benign:      Input{Argv1: "0", TimeNow: 987654321},
		Source: `
main:
    cmp r1, 2
    jl .out
    ld.q r1, [r2+8]
    call atoi
    mov r1, 0
    mov r2, 0
    mov r3, 0
    syscall                ; syscall number comes from argv[1]
    cmp r0, 987654321
    jne .out
    call bomb
.out:
    mov r0, 0
    ret
`,
	},

	// ── Symbolic Jump ────────────────────────────────────────────────
	{
		Name:        "jump",
		Category:    Accuracy,
		Challenge:   ChSymbolicJump,
		Description: "Employ symbolic values as unconditional jump addresses",
		Paper:       [4]PaperOutcome{Es3, Es3, Es2, Es2},
		Trigger:     Input{Argv1: "7"},
		Benign:      Input{Argv1: "1"},
		Source: `
main:
    cmp r1, 2
    jl .out
    ld.q r1, [r2+8]
    call atoi
    mov r10, r0
    and r10, 15            ; unchecked dispatch: the mask keeps any value
    mov r9, .anchor        ; inside the 16 slots without a guard branch
    mul r10, 12
    add r9, r10
    jmp r9
.anchor:
    jmp .out
    jmp .out
    jmp .out
    jmp .out
    jmp .out
    jmp .out
    jmp .out
    call bomb
    jmp .out
    jmp .out
    jmp .out
    jmp .out
    jmp .out
    jmp .out
    jmp .out
    jmp .out
.out:
    mov r0, 0
    ret
`,
	},
	{
		Name:        "jumptab",
		Category:    Accuracy,
		Challenge:   ChSymbolicJump,
		Description: "Employ symbolic values as offsets to an address array",
		Paper:       [4]PaperOutcome{Es3, Es3, Es3, Es3},
		Trigger:     Input{Argv1: "3"},
		Benign:      Input{Argv1: "1"},
		Source: `
jump_hit:
    call bomb
jump_miss:
    mov r0, 0
    ret

main:
    cmp r1, 2
    jl jump_miss
    ld.q r1, [r2+8]
    call atoi
    cmp r0, 0
    jl jump_miss
    cmp r0, 4
    jg jump_miss
    mov r9, jtab
    mov r10, r0
    shl r10, 3
    add r9, r10
    ld.q r9, [r9+0]
    jmp r9

    .data
jtab: .quad jump_miss, jump_miss, jump_miss, jump_hit, jump_miss
`,
	},

	// ── Floating-point Number ────────────────────────────────────────
	{
		Name:        "float",
		Category:    Accuracy,
		Challenge:   ChFloat,
		Description: "Employ floating-point numbers in symbolic conditions",
		Paper:       [4]PaperOutcome{Es1, Es1, E, Es3},
		Trigger:     Input{Argv1: "0.00000000000001"},
		Benign:      Input{Argv1: "1"},
		Source: `
main:
    cmp r1, 2
    jl .out
    ld.q r1, [r2+8]
    call atof
    mov r12, r0
    movf r6, 0.0
    fcmp r6, r12           ; need 0 < x
    jge .out
    movf r7, 1024.0
    mov r8, r7
    fadd r8, r12           ; 1024 + x
    fcmp r8, r7            ; need 1024 + x == 1024
    jne .out
    call bomb
.out:
    mov r0, 0
    ret
`,
	},

	// ── External Function Call ───────────────────────────────────────
	{
		Name:        "sin",
		Category:    Scalability,
		Challenge:   ChExternalCall,
		Description: "Employ symbolic values as the parameter of sin",
		Paper:       [4]PaperOutcome{Es1, Es1, E, Es2},
		Trigger:     Input{Argv1: "0.5"}, // sin(0.5) ≈ 0.479
		Benign:      Input{Argv1: "0.1"},
		Source: `
main:
    cmp r1, 2
    jl .out
    ld.q r1, [r2+8]
    call atof
    mov r1, r0
    call fsin
    mov r12, r0
    movf r6, 0.47
    fcmp r12, r6           ; need sin(x) > 0.47
    jle .out
    movf r6, 0.48
    fcmp r12, r6           ; need sin(x) < 0.48
    jge .out
    call bomb
.out:
    mov r0, 0
    ret
`,
	},
	{
		Name:        "srand",
		Category:    Scalability,
		Challenge:   ChExternalCall,
		Description: "Employ symbolic values as the parameter of srand",
		Paper:       [4]PaperOutcome{Es2, E, E, Es2},
		Trigger:     Input{Argv1: "12345"}, // rand() == 235318264
		Benign:      Input{Argv1: "10000"},
		Source: `
main:
    cmp r1, 2
    jl .out
    ld.q r1, [r2+8]
    call atoi
    mov r1, r0
    call srand
    call rand
    cmp r0, 235318264
    jne .out
    call bomb
.out:
    mov r0, 0
    ret
`,
	},

	// ── Crypto Function ──────────────────────────────────────────────
	{
		Name:        "sha1",
		Category:    Scalability,
		Challenge:   ChCrypto,
		Description: "Infer the plain text from an SHA1 result",
		Paper:       [4]PaperOutcome{E, E, E, Es2},
		Trigger:     Input{Argv1: "fortytwo"},
		Benign:      Input{Argv1: "x"},
		Source: `
main:
    cmp r1, 2
    jl .out
    ld.q r12, [r2+8]
    mov r1, r12
    call strlen
    cmp r0, 55
    jg .out
    mov r2, r0
    mov r1, r12
    mov r3, dgst
    call sha1
    mov r6, dgst
    mov r7, want
    mov r8, 0
.cmploop:
    cmp r8, 20
    je .match
    ld.b r9, [r6+0]
    ld.b r10, [r7+0]
    cmp r9, r10
    jne .out
    add r6, 1
    add r7, 1
    add r8, 1
    jmp .cmploop
.match:
    call bomb
.out:
    mov r0, 0
    ret

    .data
dgst: .space 20
want: .byte 0x75, 0x7b, 0xa6, 0x9f, 0xd1, 0x54, 0xee, 0x1e, 0xbd, 0xf5
      .byte 0x4b, 0x3e, 0x3f, 0xd0, 0xa2, 0x6d, 0xe3, 0xe0, 0x2d, 0xb2
`,
	},
	{
		Name:        "aes",
		Category:    Scalability,
		Challenge:   ChCrypto,
		Description: "Infer the key from an AES encryption result",
		Paper:       [4]PaperOutcome{Es2, Es2, Es2, Es2},
		Trigger:     Input{Argv1: "sixteen-byte-key"},
		Benign:      Input{Argv1: "0123456789abcdef"},
		Source: `
main:
    cmp r1, 2
    jl .out
    ld.q r12, [r2+8]
    mov r1, r12
    call strlen
    cmp r0, 16
    jne .out
    mov r1, r12
    mov r2, plain
    mov r3, ct
    call aes128_encrypt
    mov r6, ct
    mov r7, want
    mov r8, 0
.cmploop:
    cmp r8, 16
    je .match
    ld.b r9, [r6+0]
    ld.b r10, [r7+0]
    cmp r9, r10
    jne .out
    add r6, 1
    add r7, 1
    add r8, 1
    jmp .cmploop
.match:
    call bomb
.out:
    mov r0, 0
    ret

    .data
plain: .ascii "attack-at-dawn!!"
ct:    .space 16
want:  .byte 0x21, 0x2d, 0xcb, 0x3b, 0x6b, 0xed, 0x18, 0x4a
       .byte 0xd2, 0x4e, 0x56, 0x87, 0x7a, 0xa0, 0xde, 0x76
`,
	},

	// ── Extras: negative bomb (§V-C) and Figure 3 programs ───────────
	{
		Name:        "negpow",
		Category:    Extra,
		Challenge:   ChNegative,
		Description: "Unreachable bomb guarded by pow(x,2) == -1 (§V-C false positive probe)",
		Trigger:     Input{Argv1: "1"}, // no trigger exists; kept for interface symmetry
		Benign:      Input{Argv1: "1"},
		Source: `
main:
    cmp r1, 2
    jl .out
    ld.q r1, [r2+8]
    call atof
    mov r1, r0
    mov r2, 2
    call fpowi             ; x^2 via the external pow routine
    movf r6, -1.0
    fcmp r0, r6
    jne .out
    call bomb              ; x^2 == -1 has no solution
.out:
    mov r0, 0
    ret
`,
	},
	{
		Name:        "loop",
		Category:    Extra,
		Challenge:   ChLoop,
		Description: "Loop with a symbolic trip count (the challenge the paper defers)",
		Trigger:     Input{Argv1: "17"}, // 17 iterations x 3 == 51
		Benign:      Input{Argv1: "2"},
		Source: `
main:
    cmp r1, 2
    jl .out
    ld.q r1, [r2+8]
    call atoi
    mov r12, r0            ; trip count
    mov r3, 0              ; acc
    mov r4, 0              ; i
.loop:
    cmp r4, r12
    jge .check
    add r3, 3
    add r4, 1
    cmp r4, 64             ; bound the loop for sanity
    jg .check
    jmp .loop
.check:
    cmp r3, 51
    jne .out
    call bomb
.out:
    mov r0, 0
    ret
`,
	},
	{
		Name:        "retjump",
		Category:    Extra,
		Challenge:   ChSymbolicJump,
		Description: "Symbolic return address: the saved slot is overwritten from input",
		Trigger:     Input{Argv1: "2"}, // slots of 12 bytes; slot 2 detonates
		Benign:      Input{Argv1: "0"},
		Source: `
victim:
    ; overwrite the saved return address with anchor + v*12
    mov r9, ret_anchor
    mov r10, r1
    mul r10, 12
    add r9, r10
    st.q [sp+0], r9
    ret

main:
    cmp r1, 2
    jl ret_out
    ld.q r1, [r2+8]
    call atoi
    cmp r0, 0
    jl ret_out
    cmp r0, 2
    jg ret_out
    mov r1, r0
    call victim
ret_anchor:
    jmp ret_out
    jmp ret_out
    call bomb
ret_out:
    mov r0, 0
    ret
`,
	},
	{
		Name:        "array3",
		Category:    Extra,
		Challenge:   ChSymbolicArray,
		Description: "Employ symbolic values as offsets for a level-three array",
		Trigger:     Input{Argv1: "2"}, // u1[2]=5, u2[5]=1, u3[1]=99
		Benign:      Input{Argv1: "0"},
		Source: `
main:
    cmp r1, 2
    jl .out
    ld.q r1, [r2+8]
    call atoi
    cmp r0, 0
    jl .out
    cmp r0, 7
    jg .out
    mov r6, u1
    add r6, r0
    ld.b r7, [r6+0]
    mov r6, u2
    add r6, r7
    ld.b r8, [r6+0]
    mov r6, u3
    add r6, r8
    ld.b r9, [r6+0]
    cmp r9, 99
    jne .out
    call bomb
.out:
    mov r0, 0
    ret

    .data
u1: .byte 3, 6, 5, 0, 2, 7, 4, 1
u2: .byte 2, 0, 3, 7, 6, 1, 4, 5
u3: .byte 55, 99, 11, 22, 33, 44, 66, 77
`,
	},
	{
		Name:        "fig3_plain",
		Category:    Extra,
		Challenge:   ChExternalCall,
		Description: "Figure 3 program with the printf call commented out",
		Trigger:     Input{Argv1: "60"},
		Benign:      Input{Argv1: "11"},
		Source: `
main:
    cmp r1, 2
    jl .out
    ld.q r1, [r2+8]
    call atoi
    cmp r0, 0x32
    jl .out
    call bomb
.out:
    mov r0, 0
    ret
`,
	},
	{
		Name:        "fig3_printf",
		Category:    Extra,
		Challenge:   ChExternalCall,
		Description: "Figure 3 program with the printf call enabled",
		Trigger:     Input{Argv1: "60"},
		Benign:      Input{Argv1: "11"},
		Source: `
main:
    cmp r1, 2
    jl .out
    ld.q r1, [r2+8]
    call atoi
    cmp r0, 0x32
    jl .out
    mov r2, r0
    mov r1, fmt
    call printf            ; drags printf's branches into the trace
    call bomb
.out:
    mov r0, 0
    ret

    .data
fmt: .asciz "value=%x\n"
`,
	},

	// ── Stress: solver-bound constraint problems ─────────────────────
	// The trigger is guarded by factoring a semiprime through the
	// bitblasted 64x64 multiplier: the two 16-bit factors are read
	// directly from the argument bytes (little-endian pairs), so the
	// whole difficulty lands on the SAT search, not on the symbolic
	// stages. Both factors are prime and exceed 8 bits, so no 16-bit
	// wraparound factorization exists and the only models are the
	// genuine factor pairs.
	{
		Name:        "factor26",
		Category:    Stress,
		Challenge:   ChHardSolve,
		Description: "Factor a 26-bit semiprime (8191 x 8209) read from argv bytes",
		Trigger:     Input{Argv1: "\xff\x1f\x11\x20"}, // a=0x1fff=8191, b=0x2011=8209
		Benign:      Input{Argv1: "aaaa"},
		Source: `
main:
    cmp r1, 2
    jl .out
    ld.q r12, [r2+8]
    mov r1, r12
    call strlen
    cmp r0, 4
    jne .out
    ld.b r3, [r12+0]
    ld.b r4, [r12+1]
    shl r4, 8
    or r3, r4              ; a = argv[0] | argv[1]<<8
    ld.b r5, [r12+2]
    ld.b r6, [r12+3]
    shl r6, 8
    or r5, r6              ; b = argv[2] | argv[3]<<8
    mul r3, r5
    cmp r3, 67239919
    jne .out
    call bomb
.out:
    mov r0, 0
    ret
`,
	},
	{
		Name:        "factor29",
		Category:    Stress,
		Challenge:   ChHardSolve,
		Description: "Factor a 29-bit semiprime (16381 x 16411) read from argv bytes",
		Trigger:     Input{Argv1: "\xfd\x3f\x1b\x40"}, // a=0x3ffd=16381, b=0x401b=16411
		Benign:      Input{Argv1: "aaaa"},
		Source: `
main:
    cmp r1, 2
    jl .out
    ld.q r12, [r2+8]
    mov r1, r12
    call strlen
    cmp r0, 4
    jne .out
    ld.b r3, [r12+0]
    ld.b r4, [r12+1]
    shl r4, 8
    or r3, r4              ; a = argv[0] | argv[1]<<8
    ld.b r5, [r12+2]
    ld.b r6, [r12+3]
    shl r6, 8
    or r5, r6              ; b = argv[2] | argv[3]<<8
    mul r3, r5
    cmp r3, 268828591
    jne .out
    call bomb
.out:
    mov r0, 0
    ret
`,
	},

	// ── Table II-extended: the TIFS-2018 taxonomy categories ─────────
	// Parallel programs beyond the two DSN samples: multiple writers,
	// producer/consumer relays, multi-process ping-pong and thread-to-
	// kernel-store propagation.
	{
		Name:        "race2",
		Category:    Extended,
		Challenge:   ChParallel,
		Taxonomy:    "parallel-program",
		Description: "Two threads add constants to a shared cell; sum checked",
		Trigger:     Input{Argv1: "13"}, // 13 + 5 + 9 == 27
		Benign:      Input{Argv1: "1"},
		Source: `
adder5:
    ld.q r6, [r1+0]
    add  r6, 5
    st.q [r1+0], r6
    ret

adder9:
    ld.q r6, [r1+0]
    add  r6, 9
    st.q [r1+0], r6
    ret

main:
    cmp r1, 2
    jl .out
    ld.q r1, [r2+8]
    call atoi
    mov r6, rcell
    st.q [r6+0], r0
    mov r0, 10             ; thread_create(adder5, rcell)
    mov r1, adder5
    mov r2, rcell
    syscall
    mov r1, r0
    mov r0, 11             ; thread_join(tid)
    syscall
    mov r0, 10             ; thread_create(adder9, rcell)
    mov r1, adder9
    mov r2, rcell
    syscall
    mov r1, r0
    mov r0, 11             ; thread_join(tid)
    syscall
    mov r6, rcell
    ld.q r7, [r6+0]
    cmp r7, 27
    jne .out
    call bomb
.out:
    mov r0, 0
    ret

    .data
rcell: .quad 0
`,
	},
	{
		Name:        "relay",
		Category:    Extended,
		Challenge:   ChParallel,
		Taxonomy:    "parallel-program",
		Description: "Worker thread derives 3x+1 into a second cell; main checks it",
		Trigger:     Input{Argv1: "13"}, // 3*13 + 1 == 40
		Benign:      Input{Argv1: "2"},
		Source: `
relayer:
    ld.q r6, [r1+0]
    mul  r6, 3
    add  r6, 1
    st.q [r1+8], r6
    ret

main:
    cmp r1, 2
    jl .out
    ld.q r1, [r2+8]
    call atoi
    mov r6, cells
    st.q [r6+0], r0
    mov r0, 10             ; thread_create(relayer, cells)
    mov r1, relayer
    mov r2, cells
    syscall
    mov r1, r0
    mov r0, 11             ; thread_join(tid)
    syscall
    mov r6, cells
    ld.q r7, [r6+8]
    cmp r7, 40
    jne .out
    call bomb
.out:
    mov r0, 0
    ret

    .data
cells: .space 16
`,
	},
	{
		Name:        "pingpong",
		Category:    Extended,
		Challenge:   ChParallel,
		Taxonomy:    "parallel-program",
		Description: "Parent sends x+1 to the child, child doubles it back over a second pipe",
		Trigger:     Input{Argv1: "13"}, // (13+1)*2 == 28
		Benign:      Input{Argv1: "1"},
		Source: `
main:
    cmp r1, 2
    jl .out
    ld.q r1, [r2+8]
    call atoi
    mov r12, r0
    mov r0, 9              ; pipe(fds1)
    mov r1, fds1
    syscall
    mov r0, 9              ; pipe(fds2)
    mov r1, fds2
    syscall
    mov r0, 8              ; fork()
    syscall
    cmp r0, 0
    je .child
    add r12, 1             ; parent: send x+1
    mov r6, pbuf
    st.b [r6+0], r12
    mov r0, 3              ; write(fds1[1], pbuf, 1)
    mov r1, fds1
    ld.q r1, [r1+8]
    mov r2, pbuf
    mov r3, 1
    syscall
    mov r0, 2              ; read(fds2[0], pbuf2, 1)
    mov r1, fds2
    ld.q r1, [r1+0]
    mov r2, pbuf2
    mov r3, 1
    syscall
    mov r1, pbuf2
    ld.b r3, [r1+0]
    cmp r3, 28
    jne .out
    call bomb
.out:
    mov r0, 0
    ret
.child:
    mov r0, 2              ; read(fds1[0], cbuf, 1)
    mov r1, fds1
    ld.q r1, [r1+0]
    mov r2, cbuf
    mov r3, 1
    syscall
    mov r6, cbuf
    ld.b r7, [r6+0]
    mul r7, 2
    st.b [r6+0], r7
    mov r0, 3              ; write(fds2[1], cbuf, 1)
    mov r1, fds2
    ld.q r1, [r1+8]
    mov r2, cbuf
    mov r3, 1
    syscall
    mov r0, 1              ; exit(0)
    mov r1, 0
    syscall

    .data
fds1:  .space 16
fds2:  .space 16
pbuf:  .space 8
pbuf2: .space 8
cbuf:  .space 8
`,
	},
	{
		Name:        "kvthread",
		Category:    Extended,
		Challenge:   ChParallel,
		Taxonomy:    "parallel-program",
		Description: "Worker thread publishes x^0x5a through the kernel store; main reads back",
		Trigger:     Input{Argv1: "99"}, // 99 ^ 0x5a == 57
		Benign:      Input{Argv1: "1"},
		Source: `
publisher:
    ld.q r6, [r1+0]
    xor  r6, 0x5a
    mov r7, kbuf
    st.b [r7+0], r6
    mov r0, 17             ; kv_put("chan", kbuf, 1)
    mov r1, kkey
    mov r2, kbuf
    mov r3, 1
    syscall
    ret

main:
    cmp r1, 2
    jl .out
    ld.q r1, [r2+8]
    call atoi
    mov r6, kcell
    st.q [r6+0], r0
    mov r0, 10             ; thread_create(publisher, kcell)
    mov r1, publisher
    mov r2, kcell
    syscall
    mov r1, r0
    mov r0, 11             ; thread_join(tid)
    syscall
    mov r0, 18             ; kv_get("chan", gbuf, 1)
    mov r1, kkey
    mov r2, gbuf
    mov r3, 1
    syscall
    mov r1, gbuf
    ld.b r3, [r1+0]
    cmp r3, 57
    jne .out
    call bomb
.out:
    mov r0, 0
    ret

    .data
kkey:  .asciz "chan"
kcell: .quad 0
kbuf:  .space 8
gbuf:  .space 8
`,
	},

	// Symbolic memory writes: the store address (and possibly the stored
	// value) derives from input — the dual of the symbolic-array loads.
	{
		Name:        "stwrite",
		Category:    Extended,
		Challenge:   ChSymbolicWrite,
		Taxonomy:    "symbolic-memory-write",
		Description: "Store a flag at a symbolic offset; a fixed cell is checked",
		Trigger:     Input{Argv1: "3"}, // wtable[3] = 1 hits the checked cell
		Benign:      Input{Argv1: "1"},
		Source: `
main:
    cmp r1, 2
    jl .out
    ld.q r1, [r2+8]
    call atoi
    cmp r0, 0
    jl .out
    cmp r0, 9
    jg .out
    mov r6, wtable
    add r6, r0
    mov r7, 1
    st.b [r6+0], r7        ; wtable[x] = 1
    mov r6, wtable
    ld.b r8, [r6+3]
    cmp r8, 1
    jne .out
    call bomb
.out:
    mov r0, 0
    ret

    .data
wtable: .space 10
`,
	},
	{
		Name:        "stval",
		Category:    Extended,
		Challenge:   ChSymbolicWrite,
		Taxonomy:    "symbolic-memory-write",
		Description: "Store a symbolic value at a symbolic offset; a fixed cell is checked",
		Trigger:     Input{Argv1: "4"}, // vtable[4] = 4*3 == 12
		Benign:      Input{Argv1: "1"},
		Source: `
main:
    cmp r1, 2
    jl .out
    ld.q r1, [r2+8]
    call atoi
    cmp r0, 0
    jl .out
    cmp r0, 9
    jg .out
    mov r6, vtable
    add r6, r0
    mov r7, r0
    mul r7, 3
    st.b [r6+0], r7        ; vtable[x] = x*3
    mov r6, vtable
    ld.b r8, [r6+4]
    cmp r8, 12
    jne .out
    call bomb
.out:
    mov r0, 0
    ret

    .data
vtable: .space 10
`,
	},
	{
		Name:        "stwrite2",
		Category:    Extended,
		Challenge:   ChSymbolicWrite,
		Taxonomy:    "symbolic-memory-write",
		Description: "Symbolic load feeds a symbolic store offset (two-level write)",
		Trigger:     Input{Argv1: "3"}, // w1[3] = 7, so w2[7] = 9 hits the check
		Benign:      Input{Argv1: "0"},
		Source: `
main:
    cmp r1, 2
    jl .out
    ld.q r1, [r2+8]
    call atoi
    cmp r0, 0
    jl .out
    cmp r0, 9
    jg .out
    mov r6, w1
    add r6, r0
    ld.b r7, [r6+0]        ; i2 = w1[x]
    mov r6, w2
    add r6, r7
    mov r8, 9
    st.b [r6+0], r8        ; w2[i2] = 9
    mov r6, w2
    ld.b r9, [r6+7]
    cmp r9, 9
    jne .out
    call bomb
.out:
    mov r0, 0
    ret

    .data
w1: .byte 4, 2, 9, 7, 0, 1, 3, 5, 8, 6
w2: .space 10
`,
	},

	// Contextual symbolic values beyond time/pid: the size of a file and
	// the length/content of an environment variable.
	{
		Name:        "filesize",
		Category:    Extended,
		Challenge:   ChContextual,
		Taxonomy:    "contextual-value",
		Description: "Employ the size of a file (stat) in conditions",
		Trigger:     Input{Argv1: "1", Files: map[string][]byte{"data.bin": bytes.Repeat([]byte{'x'}, 77)}},
		Benign:      Input{Argv1: "1", Files: map[string][]byte{"data.bin": []byte("abc")}},
		Source: `
main:
    mov r0, 19             ; stat("data.bin")
    mov r1, fpath
    syscall
    cmp r0, 77
    jne .out
    call bomb
.out:
    mov r0, 0
    ret

    .data
fpath: .asciz "data.bin"
`,
	},
	{
		Name:        "envlen",
		Category:    Extended,
		Challenge:   ChContextual,
		Taxonomy:    "contextual-value",
		Description: "Employ the length of an environment variable in conditions",
		Trigger:     Input{Argv1: "1", Env: map[string]string{"SECRET": "magic77"}},
		Benign:      Input{Argv1: "1", Env: map[string]string{"SECRET": "abc"}},
		Source: `
main:
    mov r0, 20             ; getenv("SECRET", ebuf, 16)
    mov r1, ename
    mov r2, ebuf
    mov r3, 16
    syscall
    cmp r0, 7
    jne .out
    call bomb
.out:
    mov r0, 0
    ret

    .data
ename: .asciz "SECRET"
ebuf:  .space 16
`,
	},
	{
		Name:        "envkey",
		Category:    Extended,
		Challenge:   ChContextual,
		Taxonomy:    "contextual-value",
		Description: "Employ the content of an environment variable in conditions",
		Trigger:     Input{Argv1: "1", Env: map[string]string{"KEY": "mag"}},
		Benign:      Input{Argv1: "1", Env: map[string]string{"KEY": "abc"}},
		Source: `
main:
    mov r0, 20             ; getenv("KEY", kvbuf, 8)
    mov r1, kname
    mov r2, kvbuf
    mov r3, 8
    syscall
    cmp r0, 3
    jl .out
    mov r1, kvbuf
    ld.b r3, [r1+0]
    cmp r3, 'm'
    jne .out
    ld.b r3, [r1+1]
    cmp r3, 'a'
    jne .out
    ld.b r3, [r1+2]
    cmp r3, 'g'
    jne .out
    call bomb
.out:
    mov r0, 0
    ret

    .data
kname: .asciz "KEY"
kvbuf: .space 8
`,
	},

	// Covert propagation through laundering tricks: the wait exit-status
	// channel and round-trips through the FP unit and an external pow.
	{
		Name:        "waitstatus",
		Category:    Extended,
		Challenge:   ChCovertProp,
		Taxonomy:    "covert-propagation",
		Description: "Child exits with a derived status; parent branches on wait's result",
		Trigger:     Input{Argv1: "13"}, // (13*3) & 0x7f == 39
		Benign:      Input{Argv1: "1"},
		Source: `
main:
    cmp r1, 2
    jl .out
    ld.q r1, [r2+8]
    call atoi
    mov r12, r0
    mov r0, 8              ; fork()
    syscall
    cmp r0, 0
    je .child
    mov r1, r0             ; wait(child)
    mov r0, 16
    syscall
    cmp r0, 39
    jne .out
    call bomb
.out:
    mov r0, 0
    ret
.child:
    mul r12, 3
    and r12, 0x7f
    mov r0, 1              ; exit((x*3) & 0x7f)
    mov r1, r12
    syscall
`,
	},
	{
		Name:        "fplaunder",
		Category:    Extended,
		Challenge:   ChCovertProp,
		Taxonomy:    "covert-propagation",
		Description: "Launder an integer through the FP unit (i2f, fadd, f2i)",
		Trigger:     Input{Argv1: "13"}, // f2i(i2f(13) + 1.0) == 14
		Benign:      Input{Argv1: "1"},
		Source: `
main:
    cmp r1, 2
    jl .out
    ld.q r1, [r2+8]
    call atoi
    mov r12, r0
    i2f r12
    movf r6, 1.0
    fadd r12, r6
    f2i r12
    cmp r12, 14
    jne .out
    call bomb
.out:
    mov r0, 0
    ret
`,
	},
	{
		Name:        "powlaunder",
		Category:    Extended,
		Challenge:   ChCovertProp,
		Taxonomy:    "covert-propagation",
		Description: "Launder a float through the external pow routine (x^1)",
		Trigger:     Input{Argv1: "13"}, // 12.5 < fpowi(x, 1) < 13.5
		Benign:      Input{Argv1: "10"},
		Source: `
main:
    cmp r1, 2
    jl .out
    ld.q r1, [r2+8]
    call atof
    mov r1, r0
    mov r2, 1
    call fpowi             ; x^1: identity, but through the external call
    movf r6, 12.5
    fcmp r0, r6
    jle .out               ; need x^1 > 12.5
    movf r6, 13.5
    fcmp r0, r6
    jge .out               ; need x^1 < 13.5
    call bomb
.out:
    mov r0, 0
    ret
`,
	},
}
