package bombs

// Names returns every registered bomb name, in registry order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for _, b := range registry {
		out = append(out, b.Name)
	}
	return out
}

// Closest returns the registered bomb name nearest to name by edit
// distance, or "" when nothing is close enough to be a plausible typo
// (distance bounded by half the query length, minimum 2). A ByName miss
// should surface this as a "did you mean" suggestion.
func Closest(name string) string {
	if name == "" {
		return ""
	}
	limit := len(name)/2 + 1
	if limit < 2 {
		limit = 2
	}
	best, bestDist := "", limit+1
	for _, b := range registry {
		if d := editDistance(name, b.Name); d < bestDist {
			best, bestDist = b.Name, d
		}
	}
	if bestDist > limit {
		return ""
	}
	return best
}

// editDistance is the Levenshtein distance, two-row dynamic program.
func editDistance(a, b string) int {
	if a == b {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost        // substitute
			if d := prev[j] + 1; d < m { // delete
				m = d
			}
			if d := cur[j-1] + 1; d < m { // insert
				m = d
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
