package bombs

import "repro/internal/suggest"

// Names returns every registered bomb name, in registry order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for _, b := range registry {
		out = append(out, b.Name)
	}
	return out
}

// Closest returns the registered bomb name nearest to name by edit
// distance, or "" when nothing is close enough to be a plausible typo
// (see suggest.Closest). A ByName miss should surface this as a
// "did you mean" suggestion.
func Closest(name string) string {
	return suggest.Closest(name, Names())
}
