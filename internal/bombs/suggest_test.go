package bombs

import "testing"

func TestClosestSuggestsTypos(t *testing.T) {
	cases := []struct {
		query, want string
	}{
		{"sha", "sha1"},       // prefix typo
		{"jumpta", "jumptab"}, // missing final letter
		{"arglne", "arglen"},  // transposition (two substitutions)
		{"time", "time"},      // exact names still resolve to themselves
		{"zzzzzzzzzz", ""},    // nothing plausible
		{"", ""},              // empty query never suggests
		// Extended-corpus names must suggest like the original ones.
		{"stwrit", "stwrite"},       // symbolic-write bombs
		{"stwrite2x", "stwrite2"},   // trailing noise on a variant name
		{"envlne", "envlen"},        // contextual bombs
		{"filesiz", "filesize"},     // dropped final letter
		{"waitstat", "waitstatus"},  // covert-propagation bombs
		{"powlaundr", "powlaunder"}, // dropped letter
		{"ping-pong", "pingpong"},   // punctuation slip
		{"kvthred", "kvthread"},     // parallel bombs
	}
	for _, c := range cases {
		if got := Closest(c.query); got != c.want {
			t.Errorf("Closest(%q) = %q, want %q", c.query, got, c.want)
		}
	}
}

// TestClosestNeverPanics sweeps degenerate and adversarial queries —
// empty, single-byte, non-ASCII, and very long strings — over the full
// grown registry; Closest must return without panicking on all of them.
func TestClosestNeverPanics(t *testing.T) {
	queries := []string{"", "a", "\x00", "日本語", string(make([]byte, 1024))}
	for _, b := range All() {
		queries = append(queries, b.Name, b.Name+b.Name)
	}
	for _, q := range queries {
		got := Closest(q)
		if got != "" {
			if _, ok := ByName(got); !ok {
				t.Errorf("Closest(%q) suggested unregistered name %q", q, got)
			}
		}
	}
}

func TestNamesCoversRegistry(t *testing.T) {
	names := Names()
	if len(names) != len(All()) {
		t.Fatalf("Names() has %d entries, registry has %d", len(names), len(All()))
	}
	for _, n := range names {
		if _, ok := ByName(n); !ok {
			t.Errorf("Names() lists %q but ByName misses it", n)
		}
	}
}
