// Package bombs contains the logic-bomb benchmark: the 22 challenge
// programs of the paper's Table II, the negative pow bomb of §V-C, the
// two Figure 3 external-call programs, and three extension bombs (the
// loop challenge the paper defers, a symbolic return address, and a
// three-level array). Each bomb is an LB64 assembly program linked
// against the guest libc; its trigger path prints BOOM and exits with
// status 42.
package bombs

import (
	"strings"
	"sync"

	"repro/internal/asm"
	"repro/internal/bin"
	"repro/internal/gos"
	"repro/internal/libc"
	"repro/internal/target"
)

// Category groups bombs the way the paper's Table II does.
type Category string

// Categories.
const (
	Accuracy    Category = "accuracy"
	Scalability Category = "scalability"
	Extra       Category = "extra" // negative bomb, Fig. 3 programs, extensions
	// Stress bombs guard the trigger with constraint problems that are
	// hard for the solver itself (integer factoring through the
	// bitblasted multiplier) rather than for the symbolic-execution
	// stages — the solver stress suite's engine-level counterpart. Not
	// part of the paper's Table II.
	Stress Category = "stress"
	// Extended bombs cover the TIFS-2018 follow-up taxonomy categories
	// absent from the DSN Table II: parallel programs, symbolic memory
	// writes, contextual values beyond time/pid, and covert propagation
	// through laundering tricks. They form Table II-extended and carry a
	// Taxonomy tag instead of a paper row.
	Extended Category = "extended"
)

// Challenge names, matching the paper's Table I / Table II rows.
const (
	ChSymbolicDecl  = "Symbolic Variable Declaration"
	ChCovertProp    = "Covert Symbolic Propagation"
	ChParallel      = "Parallel Program"
	ChSymbolicArray = "Symbolic Array"
	ChContextual    = "Contextual Symbolic Value"
	ChSymbolicJump  = "Symbolic Jump"
	ChFloat         = "Floating-point Number"
	ChExternalCall  = "External Function Call"
	ChCrypto        = "Crypto Function"
	ChNegative      = "Negative Predicate"
	ChLoop          = "Loop"                  // extension: the challenge the paper defers
	ChHardSolve     = "Hard Constraint"       // stress: solver-bound factoring guards
	ChSymbolicWrite = "Symbolic Memory Write" // extended: symbolic store addresses
)

// PaperOutcome is a Table II cell value.
type PaperOutcome string

// Table II cell values.
const (
	OK  PaperOutcome = "ok" // solved (checkmark in the paper)
	Es0 PaperOutcome = "Es0"
	Es1 PaperOutcome = "Es1"
	Es2 PaperOutcome = "Es2"
	Es3 PaperOutcome = "Es3"
	E   PaperOutcome = "E" // abnormal exit
	P   PaperOutcome = "P" // partial success (Angr simulation)
)

// Input fully specifies one concrete run: the argument string plus every
// environment facet a bomb can depend on. The benign input is the seed a
// tool starts from; the trigger input is the ground truth that detonates
// the bomb. It is an alias for the target-neutral target.Input so the
// engine and other frontends share one representation.
type Input = target.Input

// Default environment values for benign runs, re-exported from target.
const (
	DefaultTime = target.DefaultTime
	DefaultPid  = target.DefaultPid
)

// Bomb is one benchmark program.
type Bomb struct {
	Name        string
	Category    Category
	Challenge   string
	Description string // the Table II "Sample Case" text

	// Taxonomy is the TIFS-2018 follow-up taxonomy slug for extended
	// bombs (e.g. "parallel-program"); empty for the DSN-era corpus.
	Taxonomy string

	Source string // LB64 assembly for the program unit

	Trigger Input // detonates the bomb
	Benign  Input // seed input; must not detonate

	// Paper is the Table II row: outcomes for BAP, Triton, Angr and
	// Angr-NoLib, in that order. Zero value for extra bombs.
	Paper [4]PaperOutcome

	once sync.Once
	img  *bin.Image
}

// Image assembles (once) and returns the bomb's binary image.
func (b *Bomb) Image() *bin.Image {
	b.once.Do(func() {
		units := append(libc.All(), asm.Source{Name: b.Name + ".s", Text: b.Source})
		b.img = asm.MustAssemble(units...)
	})
	return b.img
}

// BombAddr returns the address of the bomb payload symbol.
func (b *Bomb) BombAddr() uint64 {
	addr, ok := b.Image().Symbol("bomb")
	if !ok {
		panic("bomb image has no bomb symbol: " + b.Name)
	}
	return addr
}

// Run executes the bomb concretely under the given input.
func (b *Bomb) Run(in Input, opts ...RunOption) (*gos.Result, error) {
	cfg := in.Config()
	for _, o := range opts {
		o(&cfg)
	}
	m, err := gos.New(b.Image(), cfg)
	if err != nil {
		return nil, err
	}
	return m.Run(), nil
}

// RunOption adjusts the machine configuration of a run.
type RunOption func(*gos.Config)

// WithRecording enables full trace recording.
func WithRecording() RunOption {
	return func(c *gos.Config) { c.Record = true }
}

// WithMaxSteps overrides the instruction budget.
func WithMaxSteps(n int) RunOption {
	return func(c *gos.Config) { c.MaxSteps = n }
}

// Triggered reports whether a run detonated the bomb: the canonical
// BOOM/42 protocol.
func Triggered(res *gos.Result) bool {
	return res.ExitStatus == 42 && strings.Contains(res.Stdout, "BOOM")
}

// All returns the full benchmark in Table II order followed by the extra
// programs. The returned bombs are shared singletons; their images are
// cached.
func All() []*Bomb { return registry }

// TableII returns only the 22 bombs evaluated in the paper's Table II:
// the accuracy and scalability categories, excluding both the extra
// programs and the stress bombs.
func TableII() []*Bomb {
	out := make([]*Bomb, 0, 22)
	for _, b := range registry {
		if b.Category == Accuracy || b.Category == Scalability {
			out = append(out, b)
		}
	}
	return out
}

// TableIIExtended returns the Table II-extended corpus: the TIFS-2018
// taxonomy categories added on top of the DSN benchmark.
func TableIIExtended() []*Bomb {
	var out []*Bomb
	for _, b := range registry {
		if b.Category == Extended {
			out = append(out, b)
		}
	}
	return out
}

// ByName returns the named bomb.
func ByName(name string) (*Bomb, bool) {
	for _, b := range registry {
		if b.Name == name {
			return b, true
		}
	}
	return nil, false
}

// ChallengeStages maps each accuracy challenge to the error stages it can
// incur — the paper's Table I.
var ChallengeStages = map[string][]PaperOutcome{
	ChSymbolicDecl:  {Es0, Es1, Es2, Es3},
	ChCovertProp:    {Es2, Es3},
	ChParallel:      {Es2, Es3},
	ChSymbolicArray: {Es3},
	ChSymbolicWrite: {Es3},
	ChContextual:    {Es3},
	ChSymbolicJump:  {Es3},
	ChFloat:         {Es3},
}
