package isa

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Instruction encoding.
//
// Short form (4 bytes):   op | mode+size | r1 | r2
// Long form (12 bytes):   op | mode+size | r1 | r2 | imm (8 bytes, LE)
//
// The mode byte packs the operand mode in the low nibble and the access
// size code (0..3 for 1,2,4,8 bytes) in the high nibble. An immediate word
// follows exactly when Mode.HasImm() is true.
const (
	shortLen = 4
	longLen  = 12

	// MaxEncodedLen is the longest possible encoded instruction.
	MaxEncodedLen = longLen
)

// Encoding and decoding errors.
var (
	ErrShortBuffer = errors.New("isa: buffer too short")
	ErrBadEncoding = errors.New("isa: bad encoding")
)

func sizeCode(size uint8) (uint8, error) {
	switch size {
	case 1:
		return 0, nil
	case 2:
		return 1, nil
	case 4:
		return 2, nil
	case 8:
		return 3, nil
	}
	return 0, fmt.Errorf("%w: size %d", ErrBadEncoding, size)
}

func codeSize(code uint8) uint8 { return 1 << (code & 3) }

// Encode appends the binary encoding of in to dst and returns the extended
// slice. The instruction must validate.
func Encode(dst []byte, in Instr) ([]byte, error) {
	if err := in.Validate(); err != nil {
		return dst, fmt.Errorf("encode: %w", err)
	}
	sc, err := sizeCode(in.Size)
	if err != nil {
		return dst, err
	}
	dst = append(dst, byte(in.Op), byte(in.Mode)|sc<<4, byte(in.R1), byte(in.R2))
	if in.Mode.HasImm() {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(in.Imm))
	}
	return dst, nil
}

// Decode reads one instruction from the front of buf. It returns the
// instruction and the number of bytes consumed.
func Decode(buf []byte) (Instr, int, error) {
	if len(buf) < shortLen {
		return Instr{}, 0, ErrShortBuffer
	}
	in := Instr{
		Op:   Op(buf[0]),
		Mode: Mode(buf[1] & 0x0f),
		Size: codeSize(buf[1] >> 4),
		R1:   Reg(buf[2]),
		R2:   Reg(buf[3]),
	}
	n := shortLen
	if in.Mode.HasImm() {
		if len(buf) < longLen {
			return Instr{}, 0, ErrShortBuffer
		}
		in.Imm = int64(binary.LittleEndian.Uint64(buf[shortLen:]))
		n = longLen
	}
	if err := in.Validate(); err != nil {
		return Instr{}, 0, fmt.Errorf("%w: %v", ErrBadEncoding, err)
	}
	return in, n, nil
}

// EncodeProgram encodes a sequence of instructions back to back.
func EncodeProgram(ins []Instr) ([]byte, error) {
	var buf []byte
	for i, in := range ins {
		var err error
		buf, err = Encode(buf, in)
		if err != nil {
			return nil, fmt.Errorf("instruction %d: %w", i, err)
		}
	}
	return buf, nil
}

// DecodeProgram decodes a byte stream into instructions until the buffer is
// exhausted.
func DecodeProgram(buf []byte) ([]Instr, error) {
	var ins []Instr
	off := 0
	for off < len(buf) {
		in, n, err := Decode(buf[off:])
		if err != nil {
			return nil, fmt.Errorf("offset %d: %w", off, err)
		}
		ins = append(ins, in)
		off += n
	}
	return ins, nil
}
