package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	tests := []struct {
		r    Reg
		want string
	}{
		{R0, "r0"},
		{R7, "r7"},
		{R14, "r14"},
		{SP, "sp"},
		{R15, "sp"},
	}
	for _, tt := range tests {
		if got := tt.r.String(); got != tt.want {
			t.Errorf("Reg(%d).String() = %q, want %q", tt.r, got, tt.want)
		}
	}
}

func TestRegValid(t *testing.T) {
	for r := Reg(0); r < NumRegs; r++ {
		if !r.Valid() {
			t.Errorf("register %d should be valid", r)
		}
	}
	if Reg(16).Valid() {
		t.Error("register 16 should be invalid")
	}
}

func TestOpString(t *testing.T) {
	if got := OpMov.String(); got != "mov" {
		t.Errorf("OpMov.String() = %q", got)
	}
	if got := Op(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown op string = %q, want embedded code", got)
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpJe.IsCondJump() || !OpJae.IsCondJump() {
		t.Error("je/jae should be conditional jumps")
	}
	if OpJmp.IsCondJump() {
		t.Error("jmp is not a conditional jump")
	}
	if !OpJmp.IsJump() || !OpJne.IsJump() {
		t.Error("jmp/jne should be jumps")
	}
	if OpCall.IsJump() {
		t.Error("call is not classified as a jump")
	}
	if !OpFadd.IsFloat() || !OpF2i.IsFloat() {
		t.Error("fadd/f2i should be float ops")
	}
	if OpAdd.IsFloat() {
		t.Error("add is not a float op")
	}
}

func TestAllOpsHaveNamesAndModes(t *testing.T) {
	for o := OpNop; o < opMax; o++ {
		if _, ok := opNames[o]; !ok {
			t.Errorf("opcode %d has no name", o)
		}
		if _, ok := allowedModes[o]; !ok {
			t.Errorf("opcode %s has no allowed modes", o)
		}
	}
}

func TestInstrValidate(t *testing.T) {
	tests := []struct {
		name    string
		in      Instr
		wantErr bool
	}{
		{"valid mov rr", Instr{Op: OpMov, Mode: ModeRR, Size: 8, R1: R1, R2: R2}, false},
		{"valid ld byte", Instr{Op: OpLd, Mode: ModeRM, Size: 1, R1: R1, R2: R2, Imm: -8}, false},
		{"valid syscall", Instr{Op: OpSyscall, Mode: ModeNone, Size: 8}, false},
		{"invalid op", Instr{Op: OpInvalid, Mode: ModeNone, Size: 8}, true},
		{"invalid mode", Instr{Op: OpMov, Mode: Mode(0), Size: 8}, true},
		{"mode not allowed", Instr{Op: OpRet, Mode: ModeRI, Size: 8}, true},
		{"bad size", Instr{Op: OpMov, Mode: ModeRR, Size: 3}, true},
		{"bad register", Instr{Op: OpMov, Mode: ModeRR, Size: 8, R1: Reg(31)}, true},
		{"jcc requires imm", Instr{Op: OpJe, Mode: ModeR, Size: 8}, true},
		{"jmp register ok", Instr{Op: OpJmp, Mode: ModeR, Size: 8, R1: R3}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.in.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ins := []Instr{
		{Op: OpNop, Mode: ModeNone, Size: 8},
		{Op: OpMov, Mode: ModeRI, Size: 8, R1: R1, Imm: -42},
		{Op: OpMov, Mode: ModeRR, Size: 8, R1: R1, R2: R2},
		{Op: OpLd, Mode: ModeRM, Size: 4, R1: R3, R2: R4, Imm: 16},
		{Op: OpSt, Mode: ModeMR, Size: 1, R1: R5, R2: R6, Imm: -1},
		{Op: OpJne, Mode: ModeI, Size: 8, Imm: 0x1234},
		{Op: OpJmp, Mode: ModeR, Size: 8, R1: R9},
		{Op: OpCall, Mode: ModeI, Size: 8, Imm: 0x2000},
		{Op: OpSyscall, Mode: ModeNone, Size: 8},
		{Op: OpHalt, Mode: ModeNone, Size: 8},
	}
	buf, err := EncodeProgram(ins)
	if err != nil {
		t.Fatalf("EncodeProgram: %v", err)
	}
	got, err := DecodeProgram(buf)
	if err != nil {
		t.Fatalf("DecodeProgram: %v", err)
	}
	if len(got) != len(ins) {
		t.Fatalf("decoded %d instructions, want %d", len(got), len(ins))
	}
	for i := range ins {
		if got[i] != ins[i] {
			t.Errorf("instruction %d: got %+v, want %+v", i, got[i], ins[i])
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Error("Decode(nil) should fail")
	}
	if _, _, err := Decode([]byte{byte(OpMov), byte(ModeRI), 0}); err == nil {
		t.Error("Decode of truncated long form should fail")
	}
	// Long form cut before the immediate.
	if _, _, err := Decode([]byte{byte(OpMov), byte(ModeRI), 0, 0, 1, 2}); err == nil {
		t.Error("Decode of truncated immediate should fail")
	}
	// Garbage opcode.
	if _, _, err := Decode([]byte{0xff, byte(ModeNone), 0, 0}); err == nil {
		t.Error("Decode of invalid opcode should fail")
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	if _, err := Encode(nil, Instr{Op: OpRet, Mode: ModeRI, Size: 8}); err == nil {
		t.Error("Encode should reject invalid instruction")
	}
}

func TestInstrString(t *testing.T) {
	tests := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpMov, Mode: ModeRI, Size: 8, R1: R1, Imm: 7}, "mov r1, 7"},
		{Instr{Op: OpMov, Mode: ModeRR, Size: 8, R1: R1, R2: R2}, "mov r1, r2"},
		{Instr{Op: OpLd, Mode: ModeRM, Size: 8, R1: R1, R2: R2, Imm: 8}, "ld.q r1, [r2+8]"},
		{Instr{Op: OpLd, Mode: ModeRM, Size: 1, R1: R1, R2: R2, Imm: -1}, "ld.b r1, [r2-1]"},
		{Instr{Op: OpSt, Mode: ModeMR, Size: 2, R1: R3, R2: R4, Imm: 0}, "st.w [r3+0], r4"},
		{Instr{Op: OpRet, Mode: ModeNone, Size: 8}, "ret"},
		{Instr{Op: OpJmp, Mode: ModeR, Size: 8, R1: R9}, "jmp r9"},
		{Instr{Op: OpJe, Mode: ModeI, Size: 8, Imm: 4096}, "je 4096"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

// randomInstr builds a random valid instruction for property testing.
func randomInstr(rng *rand.Rand) Instr {
	ops := make([]Op, 0, int(opMax))
	for o := OpNop; o < opMax; o++ {
		ops = append(ops, o)
	}
	op := ops[rng.Intn(len(ops))]
	modes := allowedModes[op]
	mode := modes[rng.Intn(len(modes))]
	in := Instr{
		Op:   op,
		Mode: mode,
		Size: 8,
		R1:   Reg(rng.Intn(NumRegs)),
		R2:   Reg(rng.Intn(NumRegs)),
	}
	if op == OpLd || op == OpSt {
		in.Size = []uint8{1, 2, 4, 8}[rng.Intn(4)]
	}
	if mode.HasImm() {
		in.Imm = int64(rng.Uint64())
	}
	return in
}

func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		_ = seed
		in := randomInstr(rng)
		buf, err := Encode(nil, in)
		if err != nil {
			t.Logf("encode %+v: %v", in, err)
			return false
		}
		if len(buf) != in.EncodedLen() {
			t.Logf("encoded length %d != EncodedLen %d", len(buf), in.EncodedLen())
			return false
		}
		out, n, err := Decode(buf)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		return n == len(buf) && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(buf []byte) bool {
		// Decode must either succeed or fail with an error; never panic,
		// and on success must consume a sensible byte count.
		in, n, err := Decode(buf)
		if err != nil {
			return true
		}
		return n >= shortLen && n <= longLen && in.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
