// Package isa defines LB64, the small 64-bit instruction set used by the
// logic-bomb reproduction suite.
//
// LB64 is deliberately x86-64-flavoured: it has a flat little-endian address
// space, sixteen 64-bit general-purpose registers, a stack that grows down,
// compare-and-branch flags, IEEE-754 float operations on register bit
// patterns, indirect jumps and calls through registers, and a syscall
// instruction. Every challenge from the paper (symbolic jumps, symbolic
// arrays, floating-point compares, push/pop propagation, external calls)
// is expressible with the same shape it has on real hardware.
package isa

import "fmt"

// Reg identifies one of the sixteen general-purpose registers.
// R15 doubles as the stack pointer (alias SP).
type Reg uint8

// General-purpose registers. By convention R0 holds return values and
// syscall numbers, R1-R5 hold arguments, and R15 is the stack pointer.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15

	// SP is the conventional alias for R15.
	SP = R15

	// NumRegs is the size of the register file.
	NumRegs = 16
)

// String returns the assembler name of the register.
func (r Reg) String() string {
	if r == SP {
		return "sp"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Valid reports whether r names an existing register.
func (r Reg) Valid() bool { return r < NumRegs }

// Op is an LB64 opcode.
type Op uint8

// Opcodes. The zero value is invalid so that accidentally zeroed memory
// never decodes as a meaningful instruction.
const (
	OpInvalid Op = iota

	OpNop
	OpMov  // mov  r1, r2|imm        r1 = src
	OpLd   // ld.SZ r1, [r2+imm]     r1 = zext(mem[r2+imm], SZ)
	OpSt   // st.SZ [r1+imm], r2     mem[r1+imm] = trunc(r2, SZ)
	OpPush // push r|imm             sp -= 8; mem[sp] = src
	OpPop  // pop  r                 r = mem[sp]; sp += 8

	OpAdd  // add r1, r2|imm
	OpSub  // sub r1, r2|imm
	OpMul  // mul r1, r2|imm         low 64 bits
	OpDiv  // div r1, r2|imm         unsigned; traps on zero divisor
	OpMod  // mod r1, r2|imm         unsigned remainder; traps on zero
	OpSdiv // sdiv r1, r2|imm        signed; traps on zero divisor
	OpSmod // smod r1, r2|imm        signed remainder; traps on zero
	OpNeg  // neg r1

	OpAnd // and r1, r2|imm
	OpOr  // or  r1, r2|imm
	OpXor // xor r1, r2|imm
	OpNot // not r1
	OpShl // shl r1, r2|imm          shift count masked to 6 bits
	OpShr // shr r1, r2|imm          logical
	OpSar // sar r1, r2|imm          arithmetic

	OpCmp  // cmp r1, r2|imm         ZF = a==b, SF = signed a<b, CF = unsigned a<b
	OpTest // test r1, r2|imm        ZF = (a&b)==0, SF = sign(a&b), CF = 0

	OpJmp // jmp imm | jmp r         unconditional, direct or register-indirect
	OpJe  // jump if ZF
	OpJne // jump if !ZF
	OpJl  // jump if SF              (signed <)
	OpJle // jump if SF || ZF
	OpJg  // jump if !SF && !ZF
	OpJge // jump if !SF
	OpJb  // jump if CF              (unsigned <)
	OpJbe // jump if CF || ZF
	OpJa  // jump if !CF && !ZF
	OpJae // jump if !CF

	OpCall // call imm | call r      pushes return address
	OpRet  // ret                    pops return address

	OpFadd // fadd r1, r2            f64 bit patterns
	OpFsub // fsub r1, r2
	OpFmul // fmul r1, r2
	OpFdiv // fdiv r1, r2
	OpFcmp // fcmp r1, r2            ZF = a==b, SF = a<b, CF = unordered
	OpI2f  // i2f r1                 int64 -> f64 bits, in place
	OpF2i  // f2i r1                 f64 bits -> int64 (truncated), in place

	OpSyscall // syscall              number in r0, args r1..r5, result r0
	OpHalt    // halt                 stop the machine

	opMax // sentinel for validation
)

var opNames = map[Op]string{
	OpNop: "nop", OpMov: "mov", OpLd: "ld", OpSt: "st",
	OpPush: "push", OpPop: "pop",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod",
	OpSdiv: "sdiv", OpSmod: "smod", OpNeg: "neg",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpNot: "not",
	OpShl: "shl", OpShr: "shr", OpSar: "sar",
	OpCmp: "cmp", OpTest: "test",
	OpJmp: "jmp", OpJe: "je", OpJne: "jne", OpJl: "jl", OpJle: "jle",
	OpJg: "jg", OpJge: "jge", OpJb: "jb", OpJbe: "jbe", OpJa: "ja", OpJae: "jae",
	OpCall: "call", OpRet: "ret",
	OpFadd: "fadd", OpFsub: "fsub", OpFmul: "fmul", OpFdiv: "fdiv",
	OpFcmp: "fcmp", OpI2f: "i2f", OpF2i: "f2i",
	OpSyscall: "syscall", OpHalt: "halt",
}

// String returns the assembler mnemonic for the opcode.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o > OpInvalid && o < opMax }

// IsCondJump reports whether o is one of the conditional jumps.
func (o Op) IsCondJump() bool { return o >= OpJe && o <= OpJae }

// IsJump reports whether o transfers control (excluding call/ret/syscall).
func (o Op) IsJump() bool { return o == OpJmp || o.IsCondJump() }

// IsFloat reports whether o operates on floating-point bit patterns.
func (o Op) IsFloat() bool { return o >= OpFadd && o <= OpF2i }

// Mode describes the operand shape of an instruction.
type Mode uint8

// Operand modes.
const (
	ModeNone Mode = iota + 1 // no operands (nop, ret, syscall, halt)
	ModeR                    // single register (pop, neg, not, jmp r, ...)
	ModeI                    // single immediate (jmp imm, push imm, call imm)
	ModeRR                   // register, register
	ModeRI                   // register, immediate
	ModeRM                   // register <- [register+imm]  (ld)
	ModeMR                   // [register+imm] <- register  (st)

	modeMax
)

// String returns a short name for the mode.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeR:
		return "r"
	case ModeI:
		return "i"
	case ModeRR:
		return "rr"
	case ModeRI:
		return "ri"
	case ModeRM:
		return "rm"
	case ModeMR:
		return "mr"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Valid reports whether m is a defined mode.
func (m Mode) Valid() bool { return m >= ModeNone && m < modeMax }

// HasImm reports whether instructions in this mode carry an immediate word.
func (m Mode) HasImm() bool {
	switch m {
	case ModeI, ModeRI, ModeRM, ModeMR:
		return true
	}
	return false
}

// Instr is one decoded LB64 instruction.
type Instr struct {
	Op   Op
	Mode Mode
	Size uint8 // access size in bytes for ld/st: 1, 2, 4 or 8; 8 elsewhere
	R1   Reg
	R2   Reg
	Imm  int64
}

// EncodedLen returns the byte length of the encoded instruction:
// 4 for short forms, 12 when an immediate word follows.
func (in Instr) EncodedLen() int {
	if in.Mode.HasImm() {
		return longLen
	}
	return shortLen
}

// String renders the instruction in assembler syntax.
func (in Instr) String() string {
	switch in.Op {
	case OpLd:
		return fmt.Sprintf("%s.%s %s, [%s%+d]", in.Op, sizeSuffix(in.Size), in.R1, in.R2, in.Imm)
	case OpSt:
		return fmt.Sprintf("%s.%s [%s%+d], %s", in.Op, sizeSuffix(in.Size), in.R1, in.Imm, in.R2)
	}
	switch in.Mode {
	case ModeNone:
		return in.Op.String()
	case ModeR:
		return fmt.Sprintf("%s %s", in.Op, in.R1)
	case ModeI:
		return fmt.Sprintf("%s %d", in.Op, in.Imm)
	case ModeRR:
		return fmt.Sprintf("%s %s, %s", in.Op, in.R1, in.R2)
	case ModeRI:
		return fmt.Sprintf("%s %s, %d", in.Op, in.R1, in.Imm)
	}
	return fmt.Sprintf("%s<%s>", in.Op, in.Mode)
}

func sizeSuffix(size uint8) string {
	switch size {
	case 1:
		return "b"
	case 2:
		return "w"
	case 4:
		return "d"
	default:
		return "q"
	}
}

// Validate checks structural well-formedness of the instruction: defined
// opcode and mode, legal registers, a legal size, and an operand mode that
// the opcode accepts.
func (in Instr) Validate() error {
	if !in.Op.Valid() {
		return fmt.Errorf("invalid opcode %d", uint8(in.Op))
	}
	if !in.Mode.Valid() {
		return fmt.Errorf("%s: invalid mode %d", in.Op, uint8(in.Mode))
	}
	if !in.R1.Valid() || !in.R2.Valid() {
		return fmt.Errorf("%s: invalid register", in.Op)
	}
	switch in.Size {
	case 1, 2, 4, 8:
	default:
		return fmt.Errorf("%s: invalid size %d", in.Op, in.Size)
	}
	allowed, ok := allowedModes[in.Op]
	if !ok {
		return fmt.Errorf("%s: opcode has no mode table", in.Op)
	}
	for _, m := range allowed {
		if m == in.Mode {
			return nil
		}
	}
	return fmt.Errorf("%s: mode %s not allowed", in.Op, in.Mode)
}

// allowedModes lists the operand modes each opcode accepts.
var allowedModes = map[Op][]Mode{
	OpNop:  {ModeNone},
	OpMov:  {ModeRR, ModeRI},
	OpLd:   {ModeRM},
	OpSt:   {ModeMR},
	OpPush: {ModeR, ModeI},
	OpPop:  {ModeR},

	OpAdd:  {ModeRR, ModeRI},
	OpSub:  {ModeRR, ModeRI},
	OpMul:  {ModeRR, ModeRI},
	OpDiv:  {ModeRR, ModeRI},
	OpMod:  {ModeRR, ModeRI},
	OpSdiv: {ModeRR, ModeRI},
	OpSmod: {ModeRR, ModeRI},
	OpNeg:  {ModeR},

	OpAnd: {ModeRR, ModeRI},
	OpOr:  {ModeRR, ModeRI},
	OpXor: {ModeRR, ModeRI},
	OpNot: {ModeR},
	OpShl: {ModeRR, ModeRI},
	OpShr: {ModeRR, ModeRI},
	OpSar: {ModeRR, ModeRI},

	OpCmp:  {ModeRR, ModeRI},
	OpTest: {ModeRR, ModeRI},

	OpJmp: {ModeI, ModeR},
	OpJe:  {ModeI},
	OpJne: {ModeI},
	OpJl:  {ModeI},
	OpJle: {ModeI},
	OpJg:  {ModeI},
	OpJge: {ModeI},
	OpJb:  {ModeI},
	OpJbe: {ModeI},
	OpJa:  {ModeI},
	OpJae: {ModeI},

	OpCall: {ModeI, ModeR},
	OpRet:  {ModeNone},

	OpFadd: {ModeRR},
	OpFsub: {ModeRR},
	OpFmul: {ModeRR},
	OpFdiv: {ModeRR},
	OpFcmp: {ModeRR},
	OpI2f:  {ModeR},
	OpF2i:  {ModeR},

	OpSyscall: {ModeNone},
	OpHalt:    {ModeNone},
}
