package symexec

import (
	"testing"

	"repro/internal/sym"
)

// FuzzSymbolicWriteEquivalence checks the weak-update symbolic store
// model against a concrete reference memory. mergeStoreBytes builds the
// post-store byte image for a store whose address is symbolic over a
// window [lo, hi]; for every concrete address the store could actually
// take, evaluating that image under the concrete assignment must yield
// exactly the bytes a plain concrete store would leave — prior byte
// everywhere except the size-byte span at the chosen address, which
// takes the stored value little-endian.
func FuzzSymbolicWriteEquivalence(f *testing.F) {
	f.Add(uint64(0x1000), uint8(3), uint8(0), uint64(0xdeadbeefcafebabe), []byte{1, 2, 3, 4, 5})
	f.Add(uint64(64), uint8(0), uint8(1), uint64(7), []byte{0xff})
	f.Add(uint64(0xfffe), uint8(7), uint8(3), uint64(0x0102030405060708), []byte{})
	f.Fuzz(func(t *testing.T, base uint64, window, sizeSel uint8, val uint64, init []byte) {
		// Keep the window away from address-space wraparound: the engine
		// only ever builds windows around mapped guest addresses.
		base = base&0xffff_ffff | 0x1_0000
		w := uint64(window % 8)
		size := uint64(1) << (sizeSel % 4) // 1, 2, 4 or 8 bytes
		lo, hi := base-w, base+w

		memAt := func(a uint64) byte {
			if len(init) == 0 {
				return 0
			}
			return init[a%uint64(len(init))]
		}
		readByte := func(a uint64) sym.Expr {
			return sym.NewConst(uint64(memAt(a)), 8)
		}
		addrExpr := sym.NewVar("a", 64)
		valExpr := sym.NewVar("v", int(size)*8)
		merged := mergeStoreBytes(addrExpr, lo, hi, valExpr, uint8(size), readByte)

		// The image must cover exactly the bytes any in-window store can
		// touch: [lo, hi+size-1].
		if got, want := uint64(len(merged)), hi+size-lo; got != want {
			t.Fatalf("image covers %d bytes, want %d ([%#x, %#x+%d))", got, want, lo, hi, size)
		}

		for a := lo; a <= hi; a++ {
			env := map[string]uint64{"a": a, "v": val}
			for cell, img := range merged {
				want := memAt(cell)
				if cell >= a && cell < a+size {
					want = byte(val >> (8 * (cell - a)))
				}
				if got := byte(sym.Eval(img, env)); got != want {
					t.Fatalf("store of %#x (size %d) at %#x, window [%#x, %#x]: cell %#x = %#x, want %#x",
						val, size, a, lo, hi, cell, got, want)
				}
			}
		}
	})
}
