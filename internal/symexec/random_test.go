package symexec

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/bombs"
	"repro/internal/gos"
	"repro/internal/libc"
	"repro/internal/solver"
	"repro/internal/sym"
)

// randomProgram emits a straight-line ALU program over the atoi of
// argv[1] with a final guarded bomb, exercising arbitrary op mixes.
func randomProgram(rng *rand.Rand, nOps int) (text string, guard uint64) {
	ops := []string{"add", "sub", "mul", "and", "or", "xor", "shl", "shr"}
	body := ""
	// Track the concrete value for seed input "5" to pick a guard that is
	// NOT hit by the seed (so a constraint must be solved).
	v := uint64(5)
	for i := 0; i < nOps; i++ {
		op := ops[rng.Intn(len(ops))]
		imm := uint64(rng.Intn(64) + 1)
		if op == "shl" || op == "shr" {
			imm = uint64(rng.Intn(4) + 1)
		}
		body += fmt.Sprintf("    %s r12, %d\n", op, imm)
		switch op {
		case "add":
			v += imm
		case "sub":
			v -= imm
		case "mul":
			v *= imm
		case "and":
			v &= imm
		case "or":
			v |= imm
		case "xor":
			v ^= imm
		case "shl":
			v <<= imm
		case "shr":
			v >>= imm
		}
	}
	guard = v + 1 + uint64(rng.Intn(8)) // unreachable from the seed value
	text = fmt.Sprintf(`
main:
    cmp r1, 2
    jl .out
    ld.q r1, [r2+8]
    call atoi
    mov r12, r0
%s    cmp r12, %d
    jne .out
    call bomb
.out:
    mov r0, 0
    ret
`, body, guard)
	return text, guard
}

// TestRandomProgramsConstraintsSound builds random programs, records a
// trace, extracts constraints and checks the fundamental soundness
// property: every extracted constraint holds under the seed environment,
// and any model for the negated guard actually flips the guard.
func TestRandomProgramsConstraintsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		text, _ := randomProgram(rng, 3+rng.Intn(6))
		units := append(libc.All(), asm.Source{Name: "r.s", Text: text})
		img, err := asm.Assemble(units...)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		cfg := gos.Config{Argv: []string{"p", "5"}, Record: true}
		m, err := gos.New(img, cfg)
		if err != nil {
			t.Fatal(err)
		}
		run := m.Run()
		if bombs.Triggered(&gos.Result{ExitStatus: run.ExitStatus, Stdout: run.Stdout}) {
			continue // guard accidentally reachable from the seed; skip
		}
		sr := Run(img, run.Trace, run.Argv, cfg.Argv, fullOptions(EnvInfo{}))
		if sr.Crashed {
			t.Fatalf("trial %d: crashed: %s", trial, sr.CrashDetail)
		}
		for _, pc := range sr.Constraints {
			if sym.Eval(pc.Expr, sr.Seed) != 1 {
				t.Fatalf("trial %d: constraint at %#x false under seed: %s",
					trial, pc.PC, pc.Expr)
			}
		}
		// Negate the final guard; if satisfiable, the model must make the
		// negation true under concrete evaluation.
		if len(sr.Constraints) == 0 {
			continue
		}
		last := sr.Constraints[len(sr.Constraints)-1]
		var cs []sym.Expr
		for _, pc := range sr.Constraints[:len(sr.Constraints)-1] {
			cs = append(cs, pc.Expr)
		}
		neg := sym.NewBoolNot(last.Expr)
		cs = append(cs, neg)
		resu, err := solver.SolveContext(context.Background(), cs, solver.Options{Seed: sr.Seed, MaxConflicts: 50_000})
		if err != nil {
			t.Fatal(err)
		}
		if resu.Status != solver.StatusSat {
			continue // genuinely unsat (e.g. parity-impossible guard)
		}
		if sym.Eval(neg, resu.Model) != 1 {
			t.Fatalf("trial %d: model does not satisfy the negated guard", trial)
		}
	}
}
