package symexec

import (
	"testing"

	"repro/internal/bombs"
)

// BenchmarkSymbolicPass measures one full trace -> constraints pass over
// a recorded concrete run of the Figure 3 program.
func BenchmarkSymbolicPass(b *testing.B) {
	bm, ok := bombs.ByName("fig3_printf")
	if !ok {
		b.Fatal("bomb missing")
	}
	res, err := bm.Run(bm.Trigger, bombs.WithRecording())
	if err != nil {
		b.Fatal(err)
	}
	cfg := bm.Trigger.Config()
	opts := fullOptions(EnvInfo{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr := Run(bm.Image(), res.Trace, res.Argv, cfg.Argv, opts)
		if len(sr.Constraints) == 0 {
			b.Fatal("no constraints")
		}
	}
}
