package symexec

import (
	"fmt"
	"strings"

	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/lift"
	"repro/internal/sym"
	"repro/internal/trace"
)

// walk replays the trace entry by entry.
func (x *exec) walk() {
	for i := range x.tr.Entries {
		if x.res.Crashed {
			return
		}
		e := &x.tr.Entries[i]
		x.tainted = false

		// Ground-truth concrete replay happens regardless of tracking, so
		// later window enumeration sees real memory.
		x.replayConcrete(e)

		if !x.tracked(e) {
			x.checkGap(e)
			continue
		}
		x.adoptFork(e)

		if x.inExternalSkip(e) {
			continue
		}

		if e.Exc != nil {
			x.handleException(e)
			if x.res.Crashed {
				return
			}
			x.finishEntry(e)
			continue
		}
		if e.Sys != nil {
			x.handleSyscall(e)
			x.finishEntry(e)
			continue
		}

		x.handleInstr(e)
		x.finishEntry(e)
	}
}

func (x *exec) finishEntry(e *trace.Entry) {
	if x.tainted {
		e.Tainted = true
		x.res.TaintedIdx = append(x.res.TaintedIdx, e.Index)
	}
}

// adoptFork installs the saved parent register state for a forked
// child's first entry.
func (x *exec) adoptFork(e *trace.Entry) {
	saved, ok := x.pendingFork[e.PID]
	if !ok {
		return
	}
	if _, exists := x.regs[e.TID]; !exists {
		st := saved
		x.regs[e.TID] = &st
	}
	delete(x.pendingFork, e.PID)
}

// inExternalSkip handles unconstrained external summaries: it starts a
// skip at calls into summarized functions, swallows the callee's entries,
// and installs the fresh return symbol at the return address.
func (x *exec) inExternalSkip(e *trace.Entry) bool {
	if pending := x.skipExt[e.TID]; pending != nil {
		if e.PC != pending.retAddr {
			return true // still inside the summarized callee
		}
		delete(x.skipExt, e.TID)
		rs := x.regState(e.TID)
		if pending.symbolic {
			x.incident(StageEs2, e,
				"external function "+pending.fn+" summarized; symbolic effects replaced by unconstrained value")
			name := fmt.Sprintf("%sext:%s#%d", simPrefix, pending.fn, x.simSeq)
			x.simSeq++
			x.res.SimulationUsed = true
			rs[isa.R0] = x.newVar(name, 64, 0)
			x.tainted = true
		} else {
			rs[isa.R0] = nil
		}
		// Fall through: the entry at the return address executes normally.
		return false
	}
	if e.Instr.Op != isa.OpCall {
		return false
	}
	fn, ok := x.extAddr[e.NextPC]
	if !ok {
		return false
	}
	x.skipExt[e.TID] = &extReturn{
		retAddr:  e.PC + uint64(e.Instr.EncodedLen()),
		fn:       fn,
		symbolic: x.argsSymbolic(e),
	}
	return true
}

// argsSymbolic heuristically decides whether an external call receives
// symbolic data: a symbolic argument register, or symbolic memory near a
// pointer-looking argument.
func (x *exec) argsSymbolic(e *trace.Entry) bool {
	rs := x.regState(e.TID)
	sm := x.symMem(e.PID)
	for r := isa.R1; r <= isa.R3; r++ {
		if rs[r] != nil {
			return true
		}
	}
	// Probe plausible pointer arguments for symbolic bytes. Without the
	// trace recording every register we cannot resolve pointers exactly,
	// so scan the process's symbolic memory footprint instead: any live
	// symbolic bytes mean the callee may consume them.
	return len(sm) > 0
}

// tracked reports whether this entry's thread/process is modeled.
func (x *exec) tracked(e *trace.Entry) bool {
	if e.PID != x.mainPID && !x.opts.Spec.TrackProcs {
		return false
	}
	if e.PID == x.mainPID && e.TID != x.mainTID && !x.opts.Spec.TrackThreads {
		return false
	}
	return true
}

// checkGap records an Es2 incident when an untracked thread or process
// touches symbolic state the engine knows about.
func (x *exec) checkGap(e *trace.Entry) {
	touches := false
	if e.Instr.Op == isa.OpLd || e.Instr.Op == isa.OpSt {
		sm := x.symMem(e.PID)
		for i := uint64(0); i < uint64(e.Instr.Size); i++ {
			if sm[e.Addr+i] != nil {
				touches = true
				break
			}
		}
	}
	if !touches {
		return
	}
	if e.PID != x.mainPID {
		if !x.gapPID[e.PID] {
			x.gapPID[e.PID] = true
			x.incident(StageEs2, e, "symbolic data manipulated in untraced process")
		}
		return
	}
	if !x.gapTID[e.TID] {
		x.gapTID[e.TID] = true
		x.incident(StageEs2, e, "symbolic data manipulated in untraced thread")
	}
}

// replayConcrete applies the entry's concrete memory effects to the
// per-process replica.
func (x *exec) replayConcrete(e *trace.Entry) {
	cm := x.concMem(e.PID)
	switch e.Instr.Op {
	case isa.OpSt:
		cm.WriteUint(e.Addr, e.Instr.Size, e.MemVal) //nolint:errcheck // sizes validated
	case isa.OpPush, isa.OpCall:
		cm.WriteUint(e.Addr, 8, e.MemVal) //nolint:errcheck // size 8 is valid
	}
	if ev := e.Sys; ev != nil {
		switch ev.Num {
		case trace.SysRead, trace.SysWebGet, trace.SysKvGet:
			if len(ev.Data) > 0 {
				cm.Write(ev.Addr, ev.Data)
			}
		case trace.SysPipe:
			rfd := ev.NewID & 0xffffffff
			wfd := ev.NewID >> 32
			cm.WriteUint(ev.Addr, 8, rfd)   //nolint:errcheck // size 8 is valid
			cm.WriteUint(ev.Addr+8, 8, wfd) //nolint:errcheck // size 8 is valid
		case trace.SysFork:
			child := int(ev.NewID)
			if _, ok := x.conc[child]; !ok {
				x.conc[child] = cm.Clone()
			}
		}
	}
}

// ── instruction handling ─────────────────────────────────────────────

func (x *exec) handleInstr(e *trace.Entry) {
	if x.opts.FloatCrash && e.Instr.Op.IsFloat() && x.instrTouchesSymbolic(e) {
		x.crash("emulator abort: symbolic floating-point operation unsupported")
		return
	}
	ilen := e.Instr.EncodedLen()
	stmts, err := lift.Cached(e.Instr, e.PC+uint64(ilen), x.opts.Lift)
	if err != nil {
		// Unsupported instruction: only an error when symbolic data is
		// involved; either way the symbolic effect is lost.
		if x.instrTouchesSymbolic(e) {
			x.incident(StageEs1, e, err.Error())
		}
		x.clearEffects(e)
		return
	}
	for _, st := range stmts {
		x.evalStmt(st, e)
	}
}

// instrTouchesSymbolic reports whether an instruction's operands carry
// symbolic state.
func (x *exec) instrTouchesSymbolic(e *trace.Entry) bool {
	rs := x.regState(e.TID)
	switch e.Instr.Mode {
	case isa.ModeR, isa.ModeRI, isa.ModeRM:
		if rs[e.Instr.R1] != nil {
			return true
		}
	case isa.ModeRR, isa.ModeMR:
		if rs[e.Instr.R1] != nil || rs[e.Instr.R2] != nil {
			return true
		}
	}
	if e.Instr.Op == isa.OpLd || e.Instr.Op == isa.OpPop {
		sm := x.symMem(e.PID)
		for i := uint64(0); i < uint64(e.Instr.Size); i++ {
			if sm[e.Addr+i] != nil {
				return true
			}
		}
	}
	return false
}

// clearEffects conservatively drops the symbolic state an unlifted
// instruction would have written.
func (x *exec) clearEffects(e *trace.Entry) {
	rs := x.regState(e.TID)
	in := e.Instr
	switch in.Op {
	case isa.OpPop, isa.OpLd, isa.OpMov, isa.OpAdd, isa.OpSub, isa.OpMul,
		isa.OpDiv, isa.OpMod, isa.OpSdiv, isa.OpSmod, isa.OpNeg,
		isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpNot,
		isa.OpShl, isa.OpShr, isa.OpSar,
		isa.OpFadd, isa.OpFsub, isa.OpFmul, isa.OpFdiv, isa.OpI2f, isa.OpF2i:
		rs[in.R1] = nil
	case isa.OpSt, isa.OpPush:
		sm := x.symMem(e.PID)
		for i := uint64(0); i < uint64(in.Size); i++ {
			delete(sm, e.Addr+i)
		}
	case isa.OpCmp, isa.OpTest, isa.OpFcmp:
		fs := x.flagState(e.TID)
		fs.z, fs.s, fs.c = nil, nil, nil
	}
}

func (x *exec) evalStmt(st ir.Stmt, e *trace.Entry) {
	switch t := st.(type) {
	case ir.SetReg:
		v := x.evalExpr(t.E, e)
		rs := x.regState(e.TID)
		if isConst(v) {
			rs[t.R] = nil
		} else {
			rs[t.R] = v
			x.tainted = true
		}

	case ir.SetFlags:
		fs := x.flagState(e.TID)
		z := x.evalExpr(t.Z, e)
		s := x.evalExpr(t.S, e)
		c := x.evalExpr(t.C, e)
		fs.z, fs.s, fs.c = symOrNil(z), symOrNil(s), symOrNil(c)
		if fs.z != nil || fs.s != nil || fs.c != nil {
			x.tainted = true
		}

	case ir.Store:
		x.doStore(t, e)

	case ir.CondBranch:
		x.doBranch(t, e)

	case ir.IndirectJump:
		x.doIndirectJump(t, e)

	case ir.DivGuard:
		d := x.evalExpr(t.Divisor, e)
		if isConst(d) {
			return
		}
		x.tainted = true
		if x.opts.ModelDivFault {
			c := sym.NewBin(sym.OpNe, d, sym.NewConst(0, d.Width()))
			x.addConstraint(c, e, KindDivGuard)
		} else {
			x.incident(StageEs2, e, "symbolic divisor fault path not modeled")
		}
	}
}

func isConst(e sym.Expr) bool {
	_, ok := e.(*sym.Const)
	return ok
}

func symOrNil(e sym.Expr) sym.Expr {
	if isConst(e) {
		return nil
	}
	return e
}

// evalExpr resolves an IR expression to a sym expression; concrete values
// become constants.
func (x *exec) evalExpr(ie ir.Expr, e *trace.Entry) sym.Expr {
	switch t := ie.(type) {
	case ir.Const:
		return sym.NewConst(t.V, t.W)

	case ir.Reg:
		rs := x.regState(e.TID)
		if v := rs[t.R]; v != nil {
			x.tainted = true
			return v
		}
		return sym.NewConst(x.concReg(t.R, e), 64)

	case ir.Flag:
		fs := x.flagState(e.TID)
		var v sym.Expr
		switch t.F {
		case ir.FlagZ:
			v = fs.z
		case ir.FlagS:
			v = fs.s
		case ir.FlagC:
			v = fs.c
		}
		if v != nil {
			x.tainted = true
			return v
		}
		// Concrete flags are reconstructed from the branch outcome by the
		// caller; a concrete flag in an expression context means the whole
		// condition is concrete — value irrelevant, branch not symbolic.
		return sym.NewConst(0, 1)

	case ir.Load:
		return x.doLoad(t.M, e)

	case ir.Bin:
		a := x.evalExpr(t.A, e)
		b := x.evalExpr(t.B, e)
		return sym.NewBin(t.Op, a, b)

	case ir.Un:
		a := x.evalExpr(t.A, e)
		switch t.Op {
		case sym.OpNot:
			return sym.NewNot(a)
		case sym.OpNeg:
			return sym.NewNeg(a)
		case sym.OpBoolNot:
			return sym.NewBoolNot(a)
		case sym.OpZExt:
			return sym.NewZExt(a, t.Arg)
		case sym.OpSExt:
			return sym.NewSExt(a, t.Arg)
		case sym.OpExtract:
			return sym.NewExtract(a, t.Arg, t.Arg2)
		case sym.OpI2F:
			return sym.NewI2F(a)
		case sym.OpF2I:
			return sym.NewF2I(a)
		}
	}
	return sym.NewConst(0, 64)
}

// concReg returns the concrete value of a register at this entry. Only
// the instruction's operand registers are recorded in the trace; the
// stack pointer is derived from the effective address.
func (x *exec) concReg(r isa.Reg, e *trace.Entry) uint64 {
	in := e.Instr
	switch {
	case r == in.R1 && in.Mode != isa.ModeNone && in.Mode != isa.ModeI:
		return e.V1
	case r == in.R2 && (in.Mode == isa.ModeRR || in.Mode == isa.ModeMR || in.Mode == isa.ModeRM):
		return e.V2
	case r == isa.SP:
		switch in.Op {
		case isa.OpPush, isa.OpCall:
			return e.Addr + 8
		case isa.OpPop, isa.OpRet:
			return e.Addr
		}
	}
	return 0
}

// ── memory ───────────────────────────────────────────────────────────

// loadConcrete assembles the value at the traced address, mixing symbolic
// bytes with the concrete loaded value.
func (x *exec) loadConcrete(e *trace.Entry, addr uint64, size uint8) sym.Expr {
	sm := x.symMem(e.PID)
	anySym := false
	for i := uint64(0); i < uint64(size); i++ {
		if sm[addr+i] != nil {
			anySym = true
			break
		}
	}
	if !anySym {
		return sym.NewConst(e.MemVal, int(size)*8)
	}
	x.tainted = true
	bytes := make([]sym.Expr, size)
	for i := uint64(0); i < uint64(size); i++ {
		if b := sm[addr+i]; b != nil {
			bytes[i] = b
		} else {
			bytes[i] = sym.NewConst(e.MemVal>>(8*i), 8)
		}
	}
	return sym.FromBytes(bytes)
}

// loadAt assembles the value at an arbitrary address from symbolic memory
// and the concrete replica (used for window enumeration).
func (x *exec) loadAt(pid int, addr uint64, size uint8) sym.Expr {
	sm := x.symMem(pid)
	cm := x.concMem(pid)
	bytes := make([]sym.Expr, size)
	for i := uint64(0); i < uint64(size); i++ {
		if b := sm[addr+i]; b != nil {
			bytes[i] = b
		} else {
			bytes[i] = sym.NewConst(uint64(cm.LoadByte(addr+i)), 8)
		}
	}
	return sym.FromBytes(bytes)
}

func (x *exec) doLoad(m ir.Mem, e *trace.Entry) sym.Expr {
	rs := x.regState(e.TID)
	base := rs[m.Base]
	if base == nil {
		return x.loadConcrete(e, e.Addr, m.Size)
	}
	// Symbolic address.
	x.tainted = true
	addrExpr := sym.NewBin(sym.OpAdd, base, sym.NewConst(uint64(m.Off), 64))
	if x.winLoads >= x.opts.MaxWindowLoads {
		x.incident(StageEs3, e, "symbolic memory model overflow: address concretized")
		return x.loadConcrete(e, e.Addr, m.Size)
	}
	switch x.opts.Mem {
	case MemConcrete:
		x.incident(StageEs3, e, "symbolic memory address concretized")
		return x.loadConcrete(e, e.Addr, m.Size)
	case MemOneLevel:
		// A window load yields an ITE tree; an address derived from one
		// is second-level symbolic addressing.
		if x.hasITE(addrExpr) {
			x.incident(StageEs3, e, "two-level symbolic memory addressing")
			return x.loadConcrete(e, e.Addr, m.Size)
		}
	}
	return x.windowLoad(addrExpr, e, m.Size)
}

// windowLoad builds an ITE chain over addresses near the observed one and
// an assume constraint keeping the solver inside the window.
func (x *exec) windowLoad(addrExpr sym.Expr, e *trace.Entry, size uint8) sym.Expr {
	x.winLoads++
	w := uint64(x.opts.MemWindow)
	lo := e.Addr - w
	hi := e.Addr + w
	result := x.loadAt(e.PID, e.Addr, size) // default: observed address
	for a := lo; a <= hi; a++ {
		if a == e.Addr {
			continue
		}
		cond := sym.NewBin(sym.OpEq, addrExpr, sym.NewConst(a, 64))
		result = sym.NewITE(cond, x.loadAt(e.PID, a, size), result)
	}
	x.addConstraint(sym.NewBin(sym.OpUle, sym.NewConst(lo, 64), addrExpr), e, KindAssume)
	x.addConstraint(sym.NewBin(sym.OpUle, addrExpr, sym.NewConst(hi, 64)), e, KindAssume)
	return result
}

func (x *exec) doStore(t ir.Store, e *trace.Entry) {
	rs := x.regState(e.TID)
	if base := rs[t.M.Base]; base != nil {
		x.tainted = true
		switch {
		case !x.opts.MemWrites:
			x.incident(StageEs3, e, "symbolic store address concretized")
		case x.winWrites >= x.opts.MaxWindowWrites:
			x.incident(StageEs3, e, "symbolic memory model overflow: store address concretized")
		default:
			addrExpr := sym.NewBin(sym.OpAdd, base, sym.NewConst(uint64(t.M.Off), 64))
			x.windowStore(addrExpr, x.evalExpr(t.E, e), t.M.Size, e)
			return
		}
	}
	v := x.evalExpr(t.E, e)
	sm := x.symMem(e.PID)
	if isConst(v) {
		for i := uint64(0); i < uint64(t.M.Size); i++ {
			delete(sm, e.Addr+i)
		}
		return
	}
	x.tainted = true
	for i := uint64(0); i < uint64(t.M.Size); i++ {
		sm[e.Addr+i] = sym.NewExtract(v, int(i)*8+7, int(i)*8)
	}
}

// windowStore models a store through a symbolic address as a weak update:
// every byte in the enumeration window becomes ITE(addr==a, new, old),
// mirroring windowLoad's ITE chain on the read side. The assume
// constraints keep the solver inside the window.
func (x *exec) windowStore(addrExpr, v sym.Expr, size uint8, e *trace.Entry) {
	x.winWrites++
	w := uint64(x.opts.MemWindow)
	lo := e.Addr - w
	hi := e.Addr + w
	sm := x.symMem(e.PID)
	readByte := func(a uint64) sym.Expr {
		if b := sm[a]; b != nil {
			return b
		}
		return sym.NewConst(uint64(x.concMem(e.PID).LoadByte(a)), 8)
	}
	for a, img := range mergeStoreBytes(addrExpr, lo, hi, v, size, readByte) {
		sm[a] = img
	}
	x.addConstraint(sym.NewBin(sym.OpUle, sym.NewConst(lo, 64), addrExpr), e, KindAssume)
	x.addConstraint(sym.NewBin(sym.OpUle, addrExpr, sym.NewConst(hi, 64)), e, KindAssume)
}

// mergeStoreBytes computes the post-store byte image for a symbolic-address
// store of v (size bytes) whose base address ranges over [lo, hi]. readByte
// supplies the pre-store image. Pure so the fuzz harness can check it
// against a concrete reference memory.
func mergeStoreBytes(addrExpr sym.Expr, lo, hi uint64, v sym.Expr, size uint8, readByte func(uint64) sym.Expr) map[uint64]sym.Expr {
	vb := make([]sym.Expr, size)
	for i := range vb {
		vb[i] = sym.NewExtract(v, i*8+7, i*8)
	}
	out := make(map[uint64]sym.Expr)
	cellAt := func(a uint64) sym.Expr {
		if img, ok := out[a]; ok {
			return img
		}
		return readByte(a)
	}
	for a := lo; a <= hi; a++ {
		cond := sym.NewBin(sym.OpEq, addrExpr, sym.NewConst(a, 64))
		for i := uint64(0); i < uint64(size); i++ {
			out[a+i] = sym.NewITE(cond, vb[i], cellAt(a+i))
		}
	}
	return out
}

// ── control flow ─────────────────────────────────────────────────────

func (x *exec) doBranch(t ir.CondBranch, e *trace.Entry) {
	fs := x.flagState(e.TID)
	if fs.z == nil && fs.s == nil && fs.c == nil {
		return // concrete condition
	}
	cond := x.condWithConcreteFlags(t.Cond, e)
	if isConst(cond) {
		return
	}
	x.tainted = true
	if containsEnvVar(cond) {
		x.incident(StageEs0, e, "branch depends on undeclared environment input: "+envVarList(cond))
		return
	}
	c := cond
	if !e.Taken {
		c = sym.NewBoolNot(cond)
	}
	x.addConstraint(c, e, KindBranch)
}

// condWithConcreteFlags evaluates the jump condition, substituting
// concrete flags with their actual values reconstructed from the seed.
func (x *exec) condWithConcreteFlags(ce ir.Expr, e *trace.Entry) sym.Expr {
	fs := x.flagState(e.TID)
	var eval func(ir.Expr) sym.Expr
	eval = func(ie ir.Expr) sym.Expr {
		switch t := ie.(type) {
		case ir.Flag:
			var v sym.Expr
			switch t.F {
			case ir.FlagZ:
				v = fs.z
			case ir.FlagS:
				v = fs.s
			case ir.FlagC:
				v = fs.c
			}
			if v != nil {
				return v
			}
			// Flag is concrete but its value was not recorded; it can only
			// matter when mixed with symbolic flags (e.g. jle with
			// symbolic ZF, concrete SF). Reconstruct from the seed: the
			// symbolic expressions evaluate to the concrete run's values.
			return sym.NewConst(0, 1)
		case ir.Bin:
			return sym.NewBin(t.Op, eval(t.A), eval(t.B))
		case ir.Un:
			if t.Op == sym.OpBoolNot {
				return sym.NewBoolNot(eval(t.A))
			}
		}
		return sym.NewConst(0, 1)
	}
	return eval(ce)
}

func (x *exec) doIndirectJump(t ir.IndirectJump, e *trace.Entry) {
	target := x.evalExpr(t.Target, e)
	if isConst(target) {
		return
	}
	x.tainted = true
	switch x.opts.Jump {
	case JumpNone:
		x.incident(StageEs3, e, "symbolic jump target not modeled")
		return
	case JumpConcretize:
		if x.hasITE(target) {
			x.incident(StageEs3, e, "symbolic jump through address table not modeled")
			return
		}
		// The pin is an assumption, not an explorable branch: the tool
		// follows only the observed target and its generated inputs for
		// other paths are wrong (Es2).
		x.incident(StageEs2, e, "symbolic jump target concretized to observed address")
		x.addConstraint(sym.NewBin(sym.OpEq, target, sym.NewConst(e.NextPC, 64)), e, KindAssume)
	case JumpEnum:
		x.addConstraint(sym.NewBin(sym.OpEq, target, sym.NewConst(e.NextPC, 64)), e, KindJump)
	}
}

// hasITE walks the expression DAG with memoization (sharing makes naive
// tree recursion exponential on crypto traces).
func (x *exec) hasITE(e sym.Expr) bool {
	seen := make(map[sym.Expr]bool)
	var walk func(sym.Expr) bool
	walk = func(n sym.Expr) bool {
		if seen[n] {
			return false
		}
		seen[n] = true
		switch t := n.(type) {
		case *sym.ITE:
			return true
		case *sym.Bin:
			return walk(t.A) || walk(t.B)
		case *sym.Un:
			return walk(t.A)
		}
		return false
	}
	return walk(e)
}

func (x *exec) addConstraint(c sym.Expr, e *trace.Entry, kind ConstraintKind) {
	if isConst(c) {
		return
	}
	x.tainted = true
	x.res.Constraints = append(x.res.Constraints, PathConstraint{
		Expr: c, Index: e.Index, PC: e.PC, Kind: kind,
	})
}

// ── exceptions ───────────────────────────────────────────────────────

func (x *exec) handleException(e *trace.Entry) {
	switch x.opts.Exc {
	case ExcTrace:
		// Handler dispatch behaves like a call; nothing symbolic happens.
	case ExcEs1:
		x.incident(StageEs1, e, "exception handler instructions cannot be traced")
	case ExcCrash:
		x.crash(fmt.Sprintf("emulator fault: %s exception unsupported", e.Exc.Kind))
	case ExcEs2:
		x.incident(StageEs2, e, "exception handler effect on symbolic state lost")
	}
}

// ── system calls ─────────────────────────────────────────────────────

func (x *exec) handleSyscall(e *trace.Entry) {
	ev := e.Sys
	rs := x.regState(e.TID)

	// A symbolic syscall number is the contextual-symbolic-value case.
	if numExpr := rs[isa.R0]; numExpr != nil {
		x.tainted = true
		if x.opts.ContextualSys {
			// Model the time syscall's semantics; other numbers keep the
			// observed result.
			ret := sym.NewITE(
				sym.NewBin(sym.OpEq, numExpr, sym.NewConst(uint64(trace.SysTime), 64)),
				sym.NewConst(x.opts.Env.TimeNow, 64),
				sym.NewConst(ev.Ret, 64),
			)
			rs[isa.R0] = symOrNil(ret)
			return
		}
		x.incident(x.opts.ContextualStage, e, "symbolic system call number not modeled")
		rs[isa.R0] = nil
		return
	}

	// Result is concrete unless a handler below overrides it.
	rs[isa.R0] = nil

	switch ev.Num {
	case trace.SysTime:
		rs[isa.R0] = x.sourceVar("time", x.opts.Spec.Time, ev.Ret)
		x.tainted = true

	case trace.SysGetpid:
		rs[isa.R0] = x.sourceVar("pid", x.opts.Spec.Pid, ev.Ret)
		x.tainted = true

	case trace.SysStat:
		rs[isa.R0] = x.sourceVar("filesize:"+ev.Path, x.opts.Spec.Stat, ev.Ret)
		x.tainted = true

	case trace.SysGetenv:
		x.handleGetenv(e, ev)

	case trace.SysWebGet:
		x.handleWebGet(e, ev)

	case trace.SysOpen:
		x.handleOpen(e, ev)

	case trace.SysRead, trace.SysKvGet:
		x.handleChannelRead(e, ev)

	case trace.SysWrite, trace.SysKvPut:
		x.handleChannelWrite(e, ev)

	case trace.SysFork:
		x.handleFork(e, ev)

	case trace.SysExit:
		x.handleExit(e, rs)

	case trace.SysWait:
		x.handleWait(e, ev)

	case trace.SysUnlink:
		// Path could be symbolic; the benchmark does not exercise it.
	}
}

// sourceVar creates the variable for an environment source according to
// its mode.
func (x *exec) sourceVar(name string, mode SourceMode, seed uint64) sym.Expr {
	switch mode {
	case SourceDeclared:
		return x.newVar(name, 64, seed)
	case SourceSim:
		x.res.SimulationUsed = true
		v := x.newVar(fmt.Sprintf("%ssys:%s#%d", simPrefix, name, x.simSeq), 64, seed)
		x.simSeq++
		return v
	default:
		return x.newVar(envPrefix+name, 64, seed)
	}
}

func (x *exec) channelPolicy(obj string) (ChanPolicy, bool) {
	switch {
	case strings.HasPrefix(obj, "pipe:"):
		return x.opts.Spec.Pipes, true
	case strings.HasPrefix(obj, "kv:"):
		return x.opts.Spec.Kv, true
	case obj == "stdin" || obj == "stdout" || strings.HasPrefix(obj, "web:") || obj == "":
		return ChanConcrete, false
	default: // file path
		return x.opts.Spec.Files, true
	}
}

func (x *exec) handleChannelWrite(e *trace.Entry, ev *trace.SysEvent) {
	policy, isChan := x.channelPolicy(ev.Obj)
	if !isChan {
		return
	}
	sm := x.symMem(e.PID)
	anySym := false
	for i := range ev.Data {
		if sm[ev.Addr+uint64(i)] != nil {
			anySym = true
			break
		}
	}
	if !anySym {
		return
	}
	x.tainted = true
	x.objTainted[ev.Obj] = true
	if policy != ChanShadow {
		return // loss is reported at the read that misses the data
	}
	sh := x.shadow[ev.Obj]
	if sh == nil {
		sh = make(map[uint64]sym.Expr)
		x.shadow[ev.Obj] = sh
	}
	for i := range ev.Data {
		if b := sm[ev.Addr+uint64(i)]; b != nil {
			sh[ev.Off+uint64(i)] = b
		} else {
			delete(sh, ev.Off+uint64(i))
		}
	}
}

func (x *exec) handleChannelRead(e *trace.Entry, ev *trace.SysEvent) {
	policy, isChan := x.channelPolicy(ev.Obj)
	if !isChan || len(ev.Data) == 0 {
		// Note: a failed kv_get (ret -1) still depends on prior puts; the
		// benchmark always reads back successfully.
		return
	}
	sm := x.symMem(e.PID)
	switch policy {
	case ChanShadow:
		sh := x.shadow[ev.Obj]
		for i := range ev.Data {
			if b := sh[ev.Off+uint64(i)]; b != nil {
				sm[ev.Addr+uint64(i)] = b
				x.tainted = true
			} else {
				delete(sm, ev.Addr+uint64(i))
			}
		}
	case ChanUnconstrained:
		x.res.SimulationUsed = true
		x.tainted = true
		for i := range ev.Data {
			name := fmt.Sprintf("%s%s[%d]#%d", simPrefix, ev.Obj, ev.Off+uint64(i), x.simSeq)
			sm[ev.Addr+uint64(i)] = x.newVar(name, 8, uint64(ev.Data[i]))
		}
		x.simSeq++
	case ChanConcrete:
		for i := range ev.Data {
			delete(sm, ev.Addr+uint64(i))
		}
		if x.objTainted[ev.Obj] {
			x.incident(StageEs2, e, "covert propagation through "+channelKind(ev.Obj)+" lost")
		}
	}
}

// envVarList names the undeclared environment variables in an expression
// for incident details (classification distinguishes terminator-byte
// incidents from genuine environment sources).
func envVarList(e sym.Expr) string {
	var names []string
	for _, n := range sym.Vars(e) {
		if IsEnvVar(n) {
			names = append(names, n)
		}
	}
	return strings.Join(names, ",")
}

func channelKind(obj string) string {
	switch {
	case strings.HasPrefix(obj, "pipe:"):
		return "pipe"
	case strings.HasPrefix(obj, "kv:"):
		return "kernel store"
	default:
		return "file"
	}
}

func (x *exec) handleWebGet(e *trace.Entry, ev *trace.SysEvent) {
	x.tainted = true
	rs := x.regState(e.TID)
	prefix := "web:" + ev.Path
	if !x.opts.Spec.Web {
		prefix = envPrefix + prefix
	}
	rs[isa.R0] = x.newVar(prefix+"!ret", 64, ev.Ret)
	sm := x.symMem(e.PID)
	for i := range ev.Data {
		name := fmt.Sprintf("%s[%d]", prefix, i)
		sm[ev.Addr+uint64(i)] = x.newVar(name, 8, uint64(ev.Data[i]))
	}
}

// handleOpen models open over a symbolic path: the contextual symbolic
// value challenge.
func (x *exec) handleOpen(e *trace.Entry, ev *trace.SysEvent) {
	sm := x.symMem(e.PID)
	pathPtr := ev.Args[0]
	n := len(ev.Path) + 1
	anySym := false
	for i := 0; i < n; i++ {
		if sm[pathPtr+uint64(i)] != nil {
			anySym = true
			break
		}
	}
	if !anySym {
		return
	}
	x.tainted = true
	rs := x.regState(e.TID)
	if !x.opts.ContextualFS {
		x.incident(x.opts.ContextualStage, e, "symbolic file name concretized")
		return
	}
	// exists := OR over known files of (path bytes == name bytes).
	var exists sym.Expr = sym.False()
	for _, f := range x.opts.Env.KnownFiles {
		var match sym.Expr = sym.True()
		for i := 0; i <= len(f); i++ { // includes NUL terminator
			var want uint64
			if i < len(f) {
				want = uint64(f[i])
			}
			b := sm[pathPtr+uint64(i)]
			if b == nil {
				b = sym.NewConst(uint64(x.concMem(e.PID).LoadByte(pathPtr+uint64(i))), 8)
			}
			match = sym.NewBin(sym.OpAnd, match,
				sym.NewBin(sym.OpEq, b, sym.NewConst(want, 8)))
		}
		exists = sym.NewBin(sym.OpOr, exists, match)
	}
	// fd = exists ? nominal : -1 — replays re-run concretely, so the
	// nominal success fd's exact value is irrelevant.
	nominal := ev.Ret
	if int64(nominal) == -1 {
		nominal = 3
	}
	rs[isa.R0] = symOrNil(sym.NewITE(exists,
		sym.NewConst(nominal, 64), sym.NewConst(^uint64(0), 64)))
}

// handleGetenv models the getenv contextual source: the returned length
// and the delivered value bytes become variables in the plane selected by
// Spec.Env, exactly like web content under Spec.Web.
func (x *exec) handleGetenv(e *trace.Entry, ev *trace.SysEvent) {
	x.tainted = true
	rs := x.regState(e.TID)
	prefix := "getenv:" + ev.Path
	switch x.opts.Spec.Env {
	case SourceDeclared:
	case SourceSim:
		x.res.SimulationUsed = true
		prefix = fmt.Sprintf("%s%s#%d", simPrefix, prefix, x.simSeq)
		x.simSeq++
	default:
		prefix = envPrefix + prefix
	}
	rs[isa.R0] = x.newVar(prefix+"!ret", 64, ev.Ret)
	sm := x.symMem(e.PID)
	for i := range ev.Data {
		name := fmt.Sprintf("%s[%d]", prefix, i)
		sm[ev.Addr+uint64(i)] = x.newVar(name, 8, uint64(ev.Data[i]))
	}
}

// handleExit captures a tracked process's symbolic exit status and
// delivers it to parents already blocked in wait — the kernel patches
// their r0 at wake without a trace entry, so the symbolic side must do
// the same here.
func (x *exec) handleExit(e *trace.Entry, rs *[16]sym.Expr) {
	status := rs[isa.R1]
	if status == nil {
		return
	}
	x.tainted = true
	x.exitStatus[e.PID] = status
	for _, tid := range x.pendingWait[e.PID] {
		x.deliverWaitStatus(tid, status, e)
	}
	delete(x.pendingWait, e.PID)
}

// handleWait models the exit-status covert channel on the parent side.
// When the child already exited the status is delivered immediately;
// otherwise delivery is deferred to the child's exit entry (the parent
// is blocked and executes nothing in between, so late patching of its
// r0 is sound).
func (x *exec) handleWait(e *trace.Entry, ev *trace.SysEvent) {
	if !x.opts.Spec.TrackProcs {
		return // the fork already reported the untraced child
	}
	child := int(int64(ev.Args[0]))
	if status, ok := x.exitStatus[child]; ok {
		x.tainted = true
		x.deliverWaitStatus(e.TID, status, e)
		return
	}
	x.pendingWait[child] = append(x.pendingWait[child], e.TID)
}

// deliverWaitStatus installs a symbolic exit status into a waiting
// thread's r0 (ChanShadow), or reports the covert channel as lost.
func (x *exec) deliverWaitStatus(tid int, status sym.Expr, e *trace.Entry) {
	if x.opts.Spec.Wait == ChanShadow {
		x.regState(tid)[isa.R0] = status
		return
	}
	x.incident(StageEs2, e, "exit-status covert channel lost")
}

func (x *exec) handleFork(e *trace.Entry, ev *trace.SysEvent) {
	child := int(ev.NewID)
	if !x.opts.Spec.TrackProcs {
		if len(x.symMem(x.mainPID)) > 0 {
			x.incident(StageEs2, e, "forked child process not traced")
		}
		return
	}
	// Clone symbolic memory for the child; its registers are the parent's
	// with a concrete r0 = 0.
	childMem := make(map[uint64]sym.Expr, len(x.symMem(e.PID)))
	for a, v := range x.symMem(e.PID) {
		childMem[a] = v
	}
	x.smem[child] = childMem
	saved := *x.regState(e.TID)
	saved[isa.R0] = nil
	x.pendingFork[child] = saved
}
