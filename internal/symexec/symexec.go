// Package symexec is the symbolic execution stage of the concolic
// framework: it replays a concrete trace over symbolic state, extracts
// path constraints at symbolic branches, and records typed incidents
// (Es0–Es3) whenever a capability gap forces it to under- or
// over-approximate — the error taxonomy of the paper's Section IV.
//
// Capability knobs model the differences between the studied tools:
// which inputs are declared symbolic (Es0), which instructions lift
// (Es1), which propagation channels are tracked (Es2), and which memory,
// jump and theory constructs can be modeled (Es3).
package symexec

import (
	"fmt"
	"strings"

	"repro/internal/bin"
	"repro/internal/gos"
	"repro/internal/lift"
	"repro/internal/mem"
	"repro/internal/sym"
	"repro/internal/trace"
)

// Stage is a symbolic-reasoning error stage (the paper's Es0..Es3).
type Stage int

// Error stages.
const (
	StageEs0 Stage = iota // symbolic variable declaration
	StageEs1              // instruction tracing / lifting
	StageEs2              // data propagation
	StageEs3              // constraint modeling
)

func (s Stage) String() string { return fmt.Sprintf("Es%d", int(s)) }

// Incident is one recorded reasoning error.
type Incident struct {
	Stage  Stage
	Index  int // trace entry index
	PC     uint64
	Detail string
}

func (i Incident) String() string {
	return fmt.Sprintf("%s @%#x #%d: %s", i.Stage, i.PC, i.Index, i.Detail)
}

// MemModel selects how symbolic memory addresses are handled.
type MemModel int

// Memory models.
const (
	// MemConcrete concretizes every symbolic address (BAP, Triton): Es3.
	MemConcrete MemModel = iota + 1
	// MemOneLevel models one level of symbolic addressing with an ITE
	// window (Angr); a second level incurs Es3.
	MemOneLevel
	// MemFull nests symbolic loads up to the window bound.
	MemFull
)

// JumpMode selects how symbolic jump targets are handled.
type JumpMode int

// Jump modes.
const (
	// JumpNone cannot model symbolic jumps at all: Es3.
	JumpNone JumpMode = iota + 1
	// JumpConcretize pins affine targets to the observed address (and can
	// negate that pin), but rejects table-loaded targets with Es3; the
	// pin is tagged Es2 because solving through it yields wrong inputs.
	JumpConcretize
	// JumpEnum pins the target and lets exploration negate it freely.
	JumpEnum
)

// ExcMode selects how guest hardware exceptions in the trace are treated.
type ExcMode int

// Exception modes.
const (
	// ExcTrace follows the handler like any other code (Pin-style).
	ExcTrace ExcMode = iota + 1
	// ExcEs1 cannot lift handler dispatch: records Es1 and the round's
	// trace is unusable past the fault.
	ExcEs1
	// ExcCrash aborts the whole analysis (emulator fault): outcome E.
	ExcCrash
	// ExcEs2 silently loses the handler's effect: records Es2.
	ExcEs2
)

// SourceMode selects how an environment input source is modeled.
type SourceMode int

// Source modes. The zero value is SourceEnv.
const (
	// SourceEnv leaves the source undeclared: branches on it record Es0.
	SourceEnv SourceMode = iota
	// SourceDeclared makes the source a solvable symbolic variable.
	SourceDeclared
	// SourceSim returns an unconstrained simulation value (P outcomes).
	SourceSim
)

// ExtKind selects how an external (library) function call is analyzed.
type ExtKind int

// External call handling.
const (
	// ExtPrecise traces through the callee (default).
	ExtPrecise ExtKind = iota
	// ExtUnconstrained skips the callee and summarizes its result as a
	// fresh unconstrained symbol.
	ExtUnconstrained
)

// ChanPolicy selects how a kernel data channel propagates symbols.
type ChanPolicy int

// Channel policies.
const (
	// ChanConcrete loses symbolic content (Es2 when it mattered).
	ChanConcrete ChanPolicy = iota + 1
	// ChanShadow propagates symbolic bytes through the kernel object.
	ChanShadow
	// ChanUnconstrained returns fresh unconstrained symbols (syscall
	// simulation, the source of the paper's P outcomes).
	ChanUnconstrained
)

// Spec declares symbolic sources and propagation capabilities.
type Spec struct {
	// ArgvNUL also symbolizes the argv terminator byte, enabling
	// length reasoning (Es0 when absent).
	ArgvNUL bool
	// ArgvPad symbolizes this many extra bytes beyond the seed string
	// (concretely zero), modeling Angr's fixed-maximum-length argv. It
	// lets a single solve lengthen the argument.
	ArgvPad int
	// Time and Pid select how those environment sources are modeled:
	// undeclared (env-plane, Es0 on branches), declared symbolic, or
	// simulated unconstrained (Angr simprocedures, P outcomes).
	Time SourceMode
	Pid  SourceMode
	// Stat and Env select how the stat (file size) and getenv contextual
	// sources are modeled, with the same three-way split as Time/Pid.
	Stat SourceMode
	Env  SourceMode
	// Web declares fetched content as symbolic; otherwise it is
	// env-plane.
	Web bool

	// Files, Pipes, Kv select the channel policies.
	Files ChanPolicy
	Pipes ChanPolicy
	Kv    ChanPolicy
	// Wait selects whether a child's exit status propagates symbolically
	// to the parent's wait return (the exit-status covert channel). Only
	// ChanShadow propagates; any other value loses the data with Es2.
	Wait ChanPolicy

	// TrackThreads follows non-main threads of the root process.
	TrackThreads bool
	// TrackProcs follows forked children.
	TrackProcs bool
}

// EnvInfo carries the benign environment the analysis runs under, used by
// contextual modeling (file existence, syscall semantics).
type EnvInfo struct {
	TimeNow    uint64
	Pid        uint64
	KnownFiles []string
}

// Options configures a symbolic execution pass.
type Options struct {
	Spec Spec
	Mem  MemModel
	Jump JumpMode
	Lift lift.Options
	Exc  ExcMode

	// ContextualFS models open(symbolic path) as a path∈knownFiles
	// constraint; ContextualSys models a symbolic syscall number against
	// the kernel's semantics (time only).
	ContextualFS  bool
	ContextualSys bool
	// ContextualStage is the stage recorded when contextual constructs
	// are NOT modeled; real tools attribute this differently (BAP/Angr:
	// Es2, Triton: Es3).
	ContextualStage Stage

	// ModelDivFault adds the implicit divisor!=0 branch on tainted
	// divisions, making fault paths explorable.
	ModelDivFault bool

	// FloatCrash aborts the whole analysis when a tainted floating-point
	// instruction is executed (Angr-with-libraries emulator behaviour:
	// outcome E), instead of lifting it or failing with Es1.
	FloatCrash bool

	// Externals maps library function symbols to ExtUnconstrained: calls
	// into them are skipped and their return value becomes a fresh
	// unconstrained summary, with an Es2 incident when symbolic state was
	// involved (Angr-NoLib simprocedures for unknown functions).
	Externals map[string]ExtKind

	// MemWindow bounds address enumeration for symbolic loads (bytes on
	// each side of the observed address). 0 = default.
	MemWindow int
	// MaxWindowLoads bounds how many symbolic-address loads one pass may
	// model before further ones concretize with Es3 (resource limits of
	// real constraint builders). 0 = default.
	MaxWindowLoads int

	// MemWrites models stores through symbolic addresses as guarded weak
	// updates over the enumeration window instead of concretizing with
	// Es3. Writes are far more expensive than loads (every cell in the
	// window gains an ITE), so they get their own budget.
	MemWrites bool
	// MaxWindowWrites bounds modeled symbolic-address stores per pass;
	// further ones concretize with Es3. 0 = default.
	MaxWindowWrites int

	Env EnvInfo
}

// DefaultMemWindow is the symbolic-load enumeration radius.
const DefaultMemWindow = 64

// DefaultMaxWindowLoads bounds modeled symbolic-address loads per pass.
const DefaultMaxWindowLoads = 64

// DefaultMaxWindowWrites bounds modeled symbolic-address stores per pass.
const DefaultMaxWindowWrites = 16

// ConstraintKind classifies path constraints.
type ConstraintKind int

// Constraint kinds.
const (
	KindBranch   ConstraintKind = iota + 1 // conditional jump outcome
	KindDivGuard                           // implicit divisor != 0
	KindJump                               // symbolic jump target pin
	KindAssume                             // side condition; never negated
)

// PathConstraint is one constraint that held on the executed path.
type PathConstraint struct {
	Expr  sym.Expr
	Index int
	PC    uint64
	Kind  ConstraintKind
}

// Result is the outcome of one symbolic pass over a trace.
type Result struct {
	Constraints []PathConstraint
	Incidents   []Incident
	// TaintedIdx lists entries that touched symbolic state (the metric
	// behind Figure 3).
	TaintedIdx []int
	// Seed maps every created variable to its concrete value in this run.
	Seed map[string]uint64
	// SimulationUsed reports that unconstrained summaries were introduced
	// (P-outcome evidence).
	SimulationUsed bool
	// Crashed reports an engine abort (outcome E).
	Crashed     bool
	CrashDetail string
}

// MinStage returns the earliest incident stage, or ok=false.
func (r *Result) MinStage() (Stage, bool) {
	if len(r.Incidents) == 0 {
		return 0, false
	}
	min := r.Incidents[0].Stage
	for _, in := range r.Incidents {
		if in.Stage < min {
			min = in.Stage
		}
	}
	return min, true
}

// envPrefix marks undeclared environment-derived variables; constraints
// over them are dropped with Es0.
const envPrefix = "env!"

// simPrefix marks unconstrained simulation variables; models that bind
// them cannot be realized as inputs (P outcomes).
const simPrefix = "sim!"

// IsEnvVar reports whether a variable is an undeclared environment value.
func IsEnvVar(name string) bool { return strings.HasPrefix(name, envPrefix) }

// IsSimVar reports whether a variable is an unconstrained simulation
// summary.
func IsSimVar(name string) bool { return strings.HasPrefix(name, simPrefix) }

type flagState struct {
	z, s, c sym.Expr // nil when concrete
}

type exec struct {
	opts Options
	img  *bin.Image
	tr   *trace.Trace
	res  *Result

	mainTID, mainPID int

	regs  map[int]*[16]sym.Expr
	flags map[int]*flagState
	smem  map[int]map[uint64]sym.Expr
	conc  map[int]*mem.Memory

	shadow     map[string]map[uint64]sym.Expr
	objTainted map[string]bool

	// pendingFork saves the parent's symbolic registers for the child's
	// lazy state creation.
	pendingFork map[int][16]sym.Expr

	// exitStatus holds each tracked process's symbolic exit status;
	// pendingWait maps a child pid to parent threads blocked in wait on
	// it, whose r0 the kernel patches at wake without a trace entry.
	exitStatus  map[int]sym.Expr
	pendingWait map[int][]int

	seen      map[string]bool // incident dedup
	gapPID    map[int]bool    // reported untracked-process gaps
	gapTID    map[int]bool    // reported untracked-thread gaps
	simSeq    int
	winLoads  int
	winWrites int
	tainted   bool // current entry touched symbolic state

	extAddr map[uint64]string  // external function entry address -> name
	skipExt map[int]*extReturn // per-tid pending external-call skip
}

// extReturn tracks a skipped external call awaiting its return address.
type extReturn struct {
	retAddr  uint64
	fn       string
	symbolic bool
}

// Run executes one symbolic pass over the trace. argvStr carries the
// concrete argument strings matching the regions (argv[0] first).
func Run(img *bin.Image, tr *trace.Trace, argv []gos.Region, argvStr []string, opts Options) *Result {
	if opts.MemWindow <= 0 {
		opts.MemWindow = DefaultMemWindow
	}
	if opts.MaxWindowLoads <= 0 {
		opts.MaxWindowLoads = DefaultMaxWindowLoads
	}
	if opts.MaxWindowWrites <= 0 {
		opts.MaxWindowWrites = DefaultMaxWindowWrites
	}
	if opts.ContextualStage == 0 {
		opts.ContextualStage = StageEs2
	}
	x := &exec{
		opts:        opts,
		img:         img,
		tr:          tr,
		res:         &Result{Seed: make(map[string]uint64)},
		regs:        make(map[int]*[16]sym.Expr),
		flags:       make(map[int]*flagState),
		smem:        make(map[int]map[uint64]sym.Expr),
		conc:        make(map[int]*mem.Memory),
		shadow:      make(map[string]map[uint64]sym.Expr),
		objTainted:  make(map[string]bool),
		pendingFork: make(map[int][16]sym.Expr),
		exitStatus:  make(map[int]sym.Expr),
		pendingWait: make(map[int][]int),
		seen:        make(map[string]bool),
		extAddr:     make(map[uint64]string),
		skipExt:     make(map[int]*extReturn),
		gapPID:      make(map[int]bool),
		gapTID:      make(map[int]bool),
	}
	if tr.Len() == 0 {
		return x.res
	}
	x.mainTID = tr.Entries[0].TID
	x.mainPID = tr.Entries[0].PID
	for _, s := range img.Symbols {
		if opts.Externals[s.Name] == ExtUnconstrained {
			x.extAddr[s.Addr] = s.Name
		}
	}
	x.initState(argv, argvStr)
	x.walk()
	return x.res
}

// initState builds the initial symbolic and concrete memory for the root
// process: image sections, the argv block, and argv[1]'s symbolic bytes.
func (x *exec) initState(argv []gos.Region, argvStr []string) {
	cm := mem.New()
	for _, sec := range x.img.Sections {
		cm.Write(sec.Addr, sec.Data)
	}
	// Rebuild the loader's argv block: pointer array then strings.
	for i, r := range argv {
		cm.WriteUint(bin.ArgBase+uint64(8*i), 8, r.Addr) //nolint:errcheck // size 8 is valid
		if i < len(argvStr) {
			cm.WriteCString(r.Addr, argvStr[i])
		}
	}
	cm.WriteUint(bin.ArgBase+uint64(8*len(argv)), 8, 0) //nolint:errcheck // size 8 is valid
	x.conc[x.mainPID] = cm
	x.smem[x.mainPID] = make(map[uint64]sym.Expr)

	if len(argv) < 2 {
		return
	}
	// argv[1] bytes become input variables. Strings beyond argv[1] are
	// not used by the benchmark.
	r := argv[1]
	n := r.Len
	if !x.opts.Spec.ArgvNUL {
		n = r.Len - 1
	}
	if x.opts.Spec.ArgvNUL {
		n += x.opts.Spec.ArgvPad
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("argv1[%d]", i)
		v := sym.NewVar(name, 8)
		x.smem[x.mainPID][r.Addr+uint64(i)] = v
		x.res.Seed[name] = uint64(x.concByteAt(r.Addr + uint64(i)))
	}
	if !x.opts.Spec.ArgvNUL && r.Len >= 1 {
		// The terminator is environment-plane: branches on it mean the
		// tool's declaration was insufficient (Es0), as with Triton's
		// fixed-length argv.
		name := envPrefix + fmt.Sprintf("argv1[%d]", r.Len-1)
		x.smem[x.mainPID][r.Addr+uint64(r.Len-1)] = sym.NewVar(name, 8)
		x.res.Seed[name] = 0
	}
}

func (x *exec) concByteAt(addr uint64) byte {
	return x.conc[x.mainPID].LoadByte(addr)
}

func (x *exec) incident(stage Stage, e *trace.Entry, detail string) {
	key := fmt.Sprintf("%d|%#x|%s", stage, e.PC, detail)
	if x.seen[key] {
		return
	}
	x.seen[key] = true
	x.res.Incidents = append(x.res.Incidents, Incident{
		Stage: stage, Index: e.Index, PC: e.PC, Detail: detail,
	})
	x.tainted = true
}

func (x *exec) crash(detail string) {
	if !x.res.Crashed {
		x.res.Crashed = true
		x.res.CrashDetail = detail
	}
}

func (x *exec) regState(tid int) *[16]sym.Expr {
	st, ok := x.regs[tid]
	if !ok {
		st = &[16]sym.Expr{}
		x.regs[tid] = st
	}
	return st
}

func (x *exec) flagState(tid int) *flagState {
	st, ok := x.flags[tid]
	if !ok {
		st = &flagState{}
		x.flags[tid] = st
	}
	return st
}

func (x *exec) symMem(pid int) map[uint64]sym.Expr {
	m, ok := x.smem[pid]
	if !ok {
		m = make(map[uint64]sym.Expr)
		x.smem[pid] = m
	}
	return m
}

func (x *exec) concMem(pid int) *mem.Memory {
	m, ok := x.conc[pid]
	if !ok {
		m = mem.New()
		x.conc[pid] = m
	}
	return m
}

// newVar creates a variable with a seed value.
func (x *exec) newVar(name string, w int, seed uint64) sym.Expr {
	x.res.Seed[name] = seed
	return sym.NewVar(name, w)
}

func containsEnvVar(e sym.Expr) bool {
	for _, n := range sym.Vars(e) {
		if IsEnvVar(n) {
			return true
		}
	}
	return false
}

func containsSimVar(e sym.Expr) bool {
	for _, n := range sym.Vars(e) {
		if IsSimVar(n) {
			return true
		}
	}
	return false
}
