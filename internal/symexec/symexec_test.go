package symexec

import (
	"context"
	"strings"
	"testing"

	"repro/internal/bombs"
	"repro/internal/gos"
	"repro/internal/lift"
	"repro/internal/solver"
	"repro/internal/sym"
)

// fullOptions is the reference engine's capability set.
func fullOptions(env EnvInfo) Options {
	return Options{
		Spec: Spec{
			ArgvNUL: true, ArgvPad: 16, Time: SourceDeclared, Pid: SourceDeclared, Web: true,
			Files: ChanShadow, Pipes: ChanShadow, Kv: ChanShadow,
			TrackThreads: true, TrackProcs: true,
		},
		Mem:           MemFull,
		Jump:          JumpEnum,
		Exc:           ExcTrace,
		ContextualFS:  true,
		ContextualSys: true,
		ModelDivFault: true,
		Env:           env,
	}
}

// runBomb records a trace of the bomb under its benign input and runs a
// symbolic pass with the given options.
func runBomb(t *testing.T, name string, opts Options) (*Result, *gos.Result) {
	t.Helper()
	b, ok := bombs.ByName(name)
	if !ok {
		t.Fatalf("bomb %s missing", name)
	}
	res, err := b.Run(b.Benign, bombs.WithRecording())
	if err != nil {
		t.Fatal(err)
	}
	cfg := b.Benign.Config()
	opts.Env.TimeNow = cfg.TimeNow
	opts.Env.Pid = cfg.Pid
	for f := range cfg.Files {
		opts.Env.KnownFiles = append(opts.Env.KnownFiles, f)
	}
	sr := Run(b.Image(), res.Trace, res.Argv, cfg.Argv, opts)
	return sr, res
}

func TestFig3PlainConstraints(t *testing.T) {
	sr, _ := runBomb(t, "fig3_plain", fullOptions(EnvInfo{}))
	if sr.Crashed {
		t.Fatalf("crashed: %s", sr.CrashDetail)
	}
	if len(sr.Constraints) == 0 {
		t.Fatal("no constraints extracted")
	}
	// With argv padding, negating the final compare (v < 0x32) is
	// satisfiable in one solve: the solver lengthens the digit string.
	if !someNegationSat(t, sr) {
		t.Fatal("no branch negation is satisfiable")
	}
}

func TestTaintedInstructionCountGrowsWithPrintf(t *testing.T) {
	// The Figure 3 effect: enabling printf strictly increases the number
	// of symbolically-relevant instructions. Use the trigger input so the
	// printf path executes.
	plain, okP := bombs.ByName("fig3_plain")
	withPrintf, okF := bombs.ByName("fig3_printf")
	if !okP || !okF {
		t.Fatal("fig3 bombs missing")
	}
	count := func(b *bombs.Bomb) int {
		res, err := b.Run(b.Trigger, bombs.WithRecording())
		if err != nil {
			t.Fatal(err)
		}
		cfg := b.Trigger.Config()
		sr := Run(b.Image(), res.Trace, res.Argv, cfg.Argv, fullOptions(EnvInfo{}))
		return len(sr.TaintedIdx)
	}
	np, nf := count(plain), count(withPrintf)
	if nf <= np {
		t.Errorf("printf variant tainted %d <= plain %d", nf, np)
	}
	t.Logf("tainted instructions: plain=%d printf=%d (+%d)", np, nf, nf-np)
}

func TestEnvBranchIncidentWithoutTimeDecl(t *testing.T) {
	opts := fullOptions(EnvInfo{})
	opts.Spec.Time = SourceEnv
	sr, _ := runBomb(t, "time", opts)
	found := false
	for _, in := range sr.Incidents {
		if in.Stage == StageEs0 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected Es0 incident, got %v", sr.Incidents)
	}
}

func TestTimeDeclaredYieldsConstraint(t *testing.T) {
	sr, _ := runBomb(t, "time", fullOptions(EnvInfo{}))
	if len(sr.Constraints) == 0 {
		t.Fatal("no constraints with declared time")
	}
	// Negating the branch should bind the time variable to the magic.
	neg := sym.NewBoolNot(sr.Constraints[len(sr.Constraints)-1].Expr)
	res, err := solver.SolveContext(context.Background(), []sym.Expr{neg}, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != solver.StatusSat || res.Model["time"] != 1735689600 {
		t.Errorf("res = %+v, want time=1735689600", res)
	}
}

func TestUnliftableFloatIncident(t *testing.T) {
	opts := fullOptions(EnvInfo{})
	opts.Lift = lift.Options{NoFloat: true}
	sr, _ := runBomb(t, "float", opts)
	var es1 bool
	for _, in := range sr.Incidents {
		if in.Stage == StageEs1 && strings.Contains(in.Detail, "unsupported") {
			es1 = true
		}
	}
	if !es1 {
		t.Errorf("expected Es1 lifting incident, got %v", sr.Incidents)
	}
}

func TestStackBombPushPop(t *testing.T) {
	// With push/pop lifted, the final compare must yield a constraint
	// solvable to 39.
	sr, _ := runBomb(t, "stack", fullOptions(EnvInfo{}))
	if len(sr.Constraints) == 0 {
		t.Fatal("no constraints")
	}
	if !someNegationSat(t, sr) {
		t.Fatal("no branch negation satisfiable for the stack bomb")
	}
	// Without push/pop lifting (BAP), an Es1 incident appears instead.
	optsBap := fullOptions(EnvInfo{})
	optsBap.Lift = lift.Options{NoPushPop: true}
	srBap, _ := runBomb(t, "stack", optsBap)
	var es1 bool
	for _, in := range srBap.Incidents {
		if in.Stage == StageEs1 {
			es1 = true
		}
	}
	if !es1 {
		t.Errorf("expected Es1 for unlifted push/pop, got %v", srBap.Incidents)
	}
}

func TestCovertFileChannel(t *testing.T) {
	// Shadowed: the read-back value stays symbolic and the final compare
	// constrains argv.
	sr, _ := runBomb(t, "file", fullOptions(EnvInfo{}))
	if sr.Crashed {
		t.Fatal("crashed")
	}
	if len(sr.Constraints) == 0 {
		t.Fatal("no constraints with shadow FS")
	}
	// Concrete channel: Es2 incident.
	opts := fullOptions(EnvInfo{})
	opts.Spec.Files = ChanConcrete
	sr2, _ := runBomb(t, "file", opts)
	var es2 bool
	for _, in := range sr2.Incidents {
		if in.Stage == StageEs2 && strings.Contains(in.Detail, "file") {
			es2 = true
		}
	}
	if !es2 {
		t.Errorf("expected Es2 covert-propagation incident, got %v", sr2.Incidents)
	}
}

func TestKvUnconstrainedSimulation(t *testing.T) {
	opts := fullOptions(EnvInfo{})
	opts.Spec.Kv = ChanUnconstrained
	sr, _ := runBomb(t, "kvstore", opts)
	if !sr.SimulationUsed {
		t.Error("simulation flag not set")
	}
	// The final compare should involve a sim! variable.
	if len(sr.Constraints) == 0 {
		t.Fatal("no constraints")
	}
	lastVars := sym.Vars(sr.Constraints[len(sr.Constraints)-1].Expr)
	var hasSim bool
	for _, v := range lastVars {
		if IsSimVar(v) {
			hasSim = true
		}
	}
	if !hasSim {
		t.Errorf("final constraint vars = %v, want sim!", lastVars)
	}
}

func TestThreadTrackingGap(t *testing.T) {
	opts := fullOptions(EnvInfo{})
	opts.Spec.TrackThreads = false
	sr, _ := runBomb(t, "thread", opts)
	var es2 bool
	for _, in := range sr.Incidents {
		if in.Stage == StageEs2 && strings.Contains(in.Detail, "thread") {
			es2 = true
		}
	}
	if !es2 {
		t.Errorf("expected untraced-thread Es2, got %v", sr.Incidents)
	}
	// Tracked: the cross-thread increment is modeled, final compare
	// constraint mentions argv bytes.
	sr2, _ := runBomb(t, "thread", fullOptions(EnvInfo{}))
	if len(sr2.Constraints) == 0 {
		t.Fatal("no constraints when tracking threads")
	}
}

func TestForkGapAndTracking(t *testing.T) {
	opts := fullOptions(EnvInfo{})
	opts.Spec.TrackProcs = false
	sr, _ := runBomb(t, "fork", opts)
	var es2 bool
	for _, in := range sr.Incidents {
		if in.Stage == StageEs2 && strings.Contains(in.Detail, "fork") {
			es2 = true
		}
	}
	if !es2 {
		t.Errorf("expected fork-gap Es2, got %v", sr.Incidents)
	}
	sr2, _ := runBomb(t, "fork", fullOptions(EnvInfo{}))
	if len(sr2.Constraints) == 0 {
		t.Fatal("no constraints when tracking processes")
	}
}

func TestSymbolicArrayModels(t *testing.T) {
	// Concrete model: Es3.
	opts := fullOptions(EnvInfo{})
	opts.Mem = MemConcrete
	sr, _ := runBomb(t, "array1", opts)
	var es3 bool
	for _, in := range sr.Incidents {
		if in.Stage == StageEs3 {
			es3 = true
		}
	}
	if !es3 {
		t.Errorf("expected Es3 with concrete memory, got %v", sr.Incidents)
	}
	// One-level model handles array1 but fails array2.
	opts1 := fullOptions(EnvInfo{})
	opts1.Mem = MemOneLevel
	sr1, _ := runBomb(t, "array1", opts1)
	for _, in := range sr1.Incidents {
		if in.Stage == StageEs3 {
			t.Errorf("one-level model should handle array1: %v", in)
		}
	}
	sr2, _ := runBomb(t, "array2", opts1)
	es3 = false
	for _, in := range sr2.Incidents {
		if in.Stage == StageEs3 && strings.Contains(in.Detail, "two-level") {
			es3 = true
		}
	}
	if !es3 {
		t.Errorf("expected two-level Es3, got %v", sr2.Incidents)
	}
}

func TestSymbolicJumpModes(t *testing.T) {
	optsNone := fullOptions(EnvInfo{})
	optsNone.Jump = JumpNone
	sr, _ := runBomb(t, "jump", optsNone)
	var es3 bool
	for _, in := range sr.Incidents {
		if in.Stage == StageEs3 && strings.Contains(in.Detail, "jump") {
			es3 = true
		}
	}
	if !es3 {
		t.Errorf("JumpNone should record Es3, got %v", sr.Incidents)
	}

	optsConc := fullOptions(EnvInfo{})
	optsConc.Jump = JumpConcretize
	sr2, _ := runBomb(t, "jump", optsConc)
	var es2 bool
	for _, in := range sr2.Incidents {
		if in.Stage == StageEs2 && strings.Contains(in.Detail, "concretized") {
			es2 = true
		}
	}
	if !es2 {
		t.Errorf("JumpConcretize should record Es2 on affine jump, got %v", sr2.Incidents)
	}

	// Table jump under concretize: Es3 (address table).
	sr3, _ := runBomb(t, "jumptab", optsConc)
	es3 = false
	for _, in := range sr3.Incidents {
		if in.Stage == StageEs3 && strings.Contains(in.Detail, "table") {
			es3 = true
		}
	}
	if !es3 {
		t.Errorf("JumpConcretize on table jump should record Es3, got %v", sr3.Incidents)
	}
}

func TestContextualOpenModel(t *testing.T) {
	sr, _ := runBomb(t, "filename", fullOptions(EnvInfo{}))
	if len(sr.Constraints) == 0 {
		t.Fatal("no constraints with contextual FS")
	}
	// Negate the fd==-1 branch; the solver must produce the known file
	// name in argv.
	var cs []sym.Expr
	for _, pc := range sr.Constraints[:len(sr.Constraints)-1] {
		cs = append(cs, pc.Expr)
	}
	cs = append(cs, sym.NewBoolNot(sr.Constraints[len(sr.Constraints)-1].Expr))
	res, err := solver.SolveContext(context.Background(), cs, solver.Options{Seed: sr.Seed})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != solver.StatusSat {
		t.Fatalf("status = %v", res.Status)
	}
	got := ""
	for i := 0; ; i++ {
		v, ok := res.Model[varName("argv1", i)]
		if !ok || v == 0 {
			break
		}
		got += string(rune(v))
	}
	if got != "secret.key" {
		t.Errorf("solved file name = %q, want secret.key", got)
	}
}

// someNegationSat tries negating each negatable constraint (keeping the
// prefix) and reports whether any negation is satisfiable — the engine's
// one-round exploration step.
func someNegationSat(t *testing.T, sr *Result) bool {
	t.Helper()
	for i := len(sr.Constraints) - 1; i >= 0; i-- {
		if sr.Constraints[i].Kind == KindAssume {
			continue
		}
		var cs []sym.Expr
		for j := 0; j < i; j++ {
			cs = append(cs, sr.Constraints[j].Expr)
		}
		cs = append(cs, sym.NewBoolNot(sr.Constraints[i].Expr))
		res, err := solver.SolveContext(context.Background(), cs, solver.Options{Seed: sr.Seed, FP: solver.FPSearch, RandSeed: 1})
		if err != nil {
			continue
		}
		if res.Status == solver.StatusSat {
			return true
		}
	}
	return false
}

func varName(prefix string, i int) string {
	return prefix + "[" + itoa(i) + "]"
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestDivGuardExceptionBomb(t *testing.T) {
	sr, _ := runBomb(t, "exception", fullOptions(EnvInfo{}))
	var guard *PathConstraint
	for i := range sr.Constraints {
		if sr.Constraints[i].Kind == KindDivGuard {
			guard = &sr.Constraints[i]
		}
	}
	if guard == nil {
		t.Fatalf("no div guard constraint; constraints=%d", len(sr.Constraints))
	}
	// Negating the guard gives divisor==0, i.e. argv "0".
	var cs []sym.Expr
	for i := range sr.Constraints {
		if &sr.Constraints[i] == guard {
			break
		}
		cs = append(cs, sr.Constraints[i].Expr)
	}
	cs = append(cs, sym.NewBoolNot(guard.Expr))
	res, err := solver.SolveContext(context.Background(), cs, solver.Options{Seed: sr.Seed})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != solver.StatusSat {
		t.Fatalf("status %v", res.Status)
	}
	if res.Model["argv1[0]"] != '0' {
		t.Errorf("argv1[0] = %q, want '0'", res.Model["argv1[0]"])
	}
}

func TestExceptionModes(t *testing.T) {
	b, _ := bombs.ByName("exception")
	res, err := b.Run(b.Trigger, bombs.WithRecording())
	if err != nil {
		t.Fatal(err)
	}
	cfg := b.Trigger.Config()

	crash := fullOptions(EnvInfo{})
	crash.Exc = ExcCrash
	sr := Run(b.Image(), res.Trace, res.Argv, cfg.Argv, crash)
	if !sr.Crashed {
		t.Error("ExcCrash should crash on a faulting trace")
	}

	es1 := fullOptions(EnvInfo{})
	es1.Exc = ExcEs1
	sr1 := Run(b.Image(), res.Trace, res.Argv, cfg.Argv, es1)
	stage, ok := sr1.MinStage()
	if !ok || stage != StageEs1 {
		t.Errorf("ExcEs1 min stage = %v/%v", stage, ok)
	}
}

func TestSeedEvaluatesConstraintsTrue(t *testing.T) {
	// Soundness: every extracted path constraint must hold under the
	// seed (the concrete run that produced it).
	for _, name := range []string{"fig3_plain", "stack", "array1", "thread", "file", "arglen", "float", "sin"} {
		sr, _ := runBomb(t, name, fullOptions(EnvInfo{}))
		if sr.Crashed {
			t.Errorf("%s: crashed", name)
			continue
		}
		for _, pc := range sr.Constraints {
			if sym.Eval(pc.Expr, sr.Seed) != 1 {
				t.Errorf("%s: constraint at %#x does not hold under seed: %s",
					name, pc.PC, pc.Expr)
				break
			}
		}
	}
}
