package ir

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/sym"
)

func TestExprStrings(t *testing.T) {
	tests := []struct {
		e    Expr
		want string
	}{
		{Const{V: 0x10, W: 64}, "0x10"},
		{Reg{R: isa.R3}, "r3"},
		{Flag{F: FlagZ}, "zf"},
		{Flag{F: FlagS}, "sf"},
		{Flag{F: FlagC}, "cf"},
		{Load{M: Mem{Base: isa.R2, Off: 8, Size: 4}}, "load [r2+8]:4"},
		{Bin{Op: sym.OpAdd, A: Reg{R: isa.R1}, B: Const{V: 1, W: 64}}, "(bvadd r1 0x1)"},
	}
	for _, tt := range tests {
		if got := tt.e.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestStmtStrings(t *testing.T) {
	tests := []struct {
		s    Stmt
		want string
	}{
		{SetReg{R: isa.R1, E: Const{V: 5, W: 64}}, "r1 := 0x5"},
		{Store{M: Mem{Base: isa.SP, Off: -8, Size: 8}, E: Reg{R: isa.R2}}, "[sp-8]:8 := r2"},
		{CondBranch{Cond: Flag{F: FlagZ}}, "branch if zf"},
		{IndirectJump{Target: Reg{R: isa.R9}}, "goto r9"},
		{DivGuard{Divisor: Reg{R: isa.R2}}, "guard r2 != 0"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
	sf := SetFlags{Z: Flag{F: FlagZ}, S: Flag{F: FlagS}, C: Const{V: 0, W: 1}}
	if !strings.Contains(sf.String(), "flags :=") {
		t.Errorf("SetFlags string = %q", sf.String())
	}
}

func TestFlagKindString(t *testing.T) {
	if FlagKind(0).String() != "flag?" {
		t.Errorf("unknown flag = %q", FlagKind(0).String())
	}
}
