// Package ir defines the intermediate representation that lifted LB64
// instructions are expressed in — the role BIL, Triton's SSA and VEX play
// in the paper's Figure 1. Each traced instruction lifts to a short list
// of statements over registers, flags and memory cells; the symbolic
// executor evaluates these against symbolic state.
package ir

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/sym"
)

// Expr is an IR expression. Unlike sym.Expr, IR expressions reference
// machine state (registers, flags, memory) rather than symbolic inputs;
// the executor resolves them to sym.Expr values per trace entry.
type Expr interface {
	fmt.Stringer
	isExpr()
}

// Const is an immediate value.
type Const struct {
	V uint64
	W int
}

func (Const) isExpr()          {}
func (c Const) String() string { return fmt.Sprintf("%#x", c.V) }

// Reg reads a 64-bit register.
type Reg struct {
	R isa.Reg
}

func (Reg) isExpr()          {}
func (r Reg) String() string { return r.R.String() }

// Flag identifies a condition flag.
type FlagKind int

// Flags.
const (
	FlagZ FlagKind = iota + 1
	FlagS
	FlagC
)

func (f FlagKind) String() string {
	switch f {
	case FlagZ:
		return "zf"
	case FlagS:
		return "sf"
	case FlagC:
		return "cf"
	}
	return "flag?"
}

// Flag reads a width-1 condition flag.
type Flag struct {
	F FlagKind
}

func (Flag) isExpr()          {}
func (f Flag) String() string { return f.F.String() }

// Mem is an effective address: base register plus displacement, accessing
// Size bytes. The executor resolves the concrete address from the trace
// and the symbolic address from the base register's state.
type Mem struct {
	Base isa.Reg
	Off  int64
	Size uint8
}

func (m Mem) String() string {
	return fmt.Sprintf("[%s%+d]:%d", m.Base, m.Off, m.Size)
}

// Load reads memory.
type Load struct {
	M Mem
}

func (Load) isExpr()          {}
func (l Load) String() string { return "load " + l.M.String() }

// Bin applies a sym binary operator to two IR expressions.
type Bin struct {
	Op   sym.BinOp
	A, B Expr
}

func (Bin) isExpr()          {}
func (b Bin) String() string { return fmt.Sprintf("(%s %s %s)", b.Op, b.A, b.B) }

// Un applies a sym unary operator; Arg/Arg2 mirror sym.Un.
type Un struct {
	Op   sym.UnOp
	A    Expr
	Arg  int
	Arg2 int
}

func (Un) isExpr()          {}
func (u Un) String() string { return fmt.Sprintf("(un%d %s)", int(u.Op), u.A) }

// Stmt is one IR statement.
type Stmt interface {
	fmt.Stringer
	isStmt()
}

// SetReg assigns a 64-bit value to a register.
type SetReg struct {
	R isa.Reg
	E Expr
}

func (SetReg) isStmt()          {}
func (s SetReg) String() string { return fmt.Sprintf("%s := %s", s.R, s.E) }

// SetFlags assigns all three flags (width-1 expressions).
type SetFlags struct {
	Z, S, C Expr
}

func (SetFlags) isStmt() {}
func (s SetFlags) String() string {
	return fmt.Sprintf("flags := (%s, %s, %s)", s.Z, s.S, s.C)
}

// Store writes Size bytes of E to memory.
type Store struct {
	M Mem
	E Expr
}

func (Store) isStmt()          {}
func (s Store) String() string { return fmt.Sprintf("%s := %s", s.M, s.E) }

// CondBranch is a conditional control transfer; Cond is width 1. The
// concrete outcome is in the trace; a symbolic Cond yields a path
// constraint.
type CondBranch struct {
	Cond Expr
}

func (CondBranch) isStmt()          {}
func (b CondBranch) String() string { return fmt.Sprintf("branch if %s", b.Cond) }

// IndirectJump transfers control to a computed target (register jump,
// register call, or return).
type IndirectJump struct {
	Target Expr
}

func (IndirectJump) isStmt()          {}
func (j IndirectJump) String() string { return fmt.Sprintf("goto %s", j.Target) }

// DivGuard marks the implicit divide-fault branch: execution continuing
// past the instruction implies Divisor != 0.
type DivGuard struct {
	Divisor Expr
}

func (DivGuard) isStmt()          {}
func (d DivGuard) String() string { return fmt.Sprintf("guard %s != 0", d.Divisor) }
