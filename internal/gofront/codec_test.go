package gofront

import (
	"math"
	"testing"
)

func intSig(n int) *Sig {
	s := &Sig{Name: "f"}
	for i := 0; i < n; i++ {
		s.Params = append(s.Params, KindInt)
		s.Names = append(s.Names, "x")
	}
	return s
}

// TestCodecRoundTrip pins that every encodable tuple decodes to itself,
// across the integer edge cases the solver actually produces.
func TestCodecRoundTrip(t *testing.T) {
	edges := []int64{0, 1, -1, 42, -42, math.MaxInt64, math.MinInt64, 1 << 62, -(1 << 62)}
	sig := intSig(2)
	for _, a := range edges {
		for _, b := range edges {
			payload, err := EncodeArgs(sig, []int64{a, b})
			if err != nil {
				t.Fatal(err)
			}
			if len(payload) != sig.PayloadLen() {
				t.Fatalf("payload len %d, want %d", len(payload), sig.PayloadLen())
			}
			got := DecodeArgs(sig, payload)
			if got[0] != a || got[1] != b {
				t.Errorf("round trip (%d, %d) -> %v", a, b, got)
			}
		}
	}

	bsig := &Sig{Name: "g", Params: []Kind{KindBool, KindInt}, Names: []string{"on", "k"}}
	for _, on := range []int64{0, 1} {
		payload, err := EncodeArgs(bsig, []int64{on, -7})
		if err != nil {
			t.Fatal(err)
		}
		got := DecodeArgs(bsig, payload)
		if got[0] != on || got[1] != -7 {
			t.Errorf("bool round trip (%d, -7) -> %v", on, got)
		}
	}
}

// TestCodecTotality pins the contract the engine's reconstruction
// forces on the codec: decoding must give every byte a meaning, and a
// byte 0 must mean the same thing as a byte that is missing entirely —
// the machine reads zeros past the end of the argv string, so a solved
// payload truncated at a NUL still decodes to what the machine ran.
func TestCodecTotality(t *testing.T) {
	sig := intSig(1)
	full, _ := EncodeArgs(sig, []int64{0x0123456789abcdef})
	for cut := 0; cut <= len(full); cut++ {
		trunc := DecodeArgs(sig, full[:cut])[0]
		padded := DecodeArgs(sig, full[:cut]+string(make([]byte, len(full)-cut)))[0]
		if trunc != padded {
			t.Errorf("cut %d: truncated %x != NUL-padded %x", cut, trunc, padded)
		}
	}
	// Every byte value decodes without branching on validity.
	for b := 0; b < 256; b++ {
		payload := string(make([]byte, 15)) + string([]byte{byte(b)})
		v := DecodeArgs(sig, payload)[0] & 15
		if want := int64((byte(b) - 'a') & 15); v != want {
			t.Errorf("byte %#x decoded low nibble %d, want %d", b, v, want)
		}
	}
}

// TestZeroArgsEncodesBenign pins the seed: zero arguments encode to a
// payload that decodes back to zeros.
func TestZeroArgsEncodesBenign(t *testing.T) {
	sig := &Sig{Name: "h", Params: []Kind{KindInt, KindBool, KindInt},
		Names: []string{"a", "b", "c"}}
	payload, err := EncodeArgs(sig, ZeroArgs(sig))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range DecodeArgs(sig, payload) {
		if v != 0 {
			t.Errorf("zero seed decodes arg %d as %d", i, v)
		}
	}
}
