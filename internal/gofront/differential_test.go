package gofront

import (
	"math"
	"testing"

	"repro/examples/demo"
	"repro/internal/asm"
	"repro/internal/libc"
	"repro/internal/target"
)

// goResult mirrors EvalResult for the real Go implementations.
type goResult struct {
	ret      int64
	hasRet   bool
	panicked bool
}

// call runs fn with recover, so real Go panics become data.
func call(fn func() (int64, bool)) (res goResult) {
	defer func() {
		if recover() != nil {
			res = goResult{panicked: true}
		}
	}()
	ret, hasRet := fn()
	return goResult{ret: ret, hasRet: hasRet}
}

// goFns dispatches each demo function as real compiled Go — the ground
// truth both the reference evaluator and the lowered machine must match.
var goFns = map[string]func(args []int64) goResult{
	"Unlock": func(a []int64) goResult {
		return call(func() (int64, bool) { demo.Unlock(int(a[0]), int(a[1])); return 0, false })
	},
	"Guard": func(a []int64) goResult {
		return call(func() (int64, bool) { return int64(demo.Guard(int(a[0]))), true })
	},
	"Probe": func(a []int64) goResult {
		return call(func() (int64, bool) { return int64(demo.Probe(int(a[0]))), true })
	},
	"Loop": func(a []int64) goResult {
		return call(func() (int64, bool) { return int64(demo.Loop(int(a[0]))), true })
	},
	"Flag": func(a []int64) goResult {
		return call(func() (int64, bool) { demo.Flag(a[0] != 0, int(a[1])); return 0, false })
	},
	"Divide": func(a []int64) goResult {
		return call(func() (int64, bool) { return int64(demo.Divide(int(a[0]), int(a[1]))), true })
	},
}

// tuples enumerates the probe inputs for a signature: boundary values
// in every position, plus the known solving tuples.
func tuples(sig *Sig) [][]int64 {
	edges := []int64{0, 1, -1, 3, -3, 5, 9, 11, 20, 42, 99, math.MaxInt64, math.MinInt64}
	var out [][]int64
	switch len(sig.Params) {
	case 1:
		for _, a := range edges {
			out = append(out, []int64{a})
		}
	case 2:
		for _, a := range edges {
			for _, b := range edges {
				out = append(out, []int64{a, b})
			}
		}
	}
	// The solving tuples, so every detonation path is exercised.
	known := map[string][][]int64{
		"Unlock": {{4, 42}},
		"Flag":   {{1, 5}, {0, 5}, {1, 0}},
		"Divide": {{11, 3}, {100, 3}},
	}
	out = append(out, known[sig.Name]...)
	// Respect kinds: bools collapse to parity.
	for _, tu := range out {
		for i, k := range sig.Params {
			if k == KindBool {
				tu[i] &= 1
			}
		}
	}
	return out
}

// TestDifferentialDemo is the three-way lockstep: for every exported
// demo function and probe tuple, real Go, the reference evaluator, and
// the lowered machine must agree on whether the call panics, and (when
// it returns an int) real Go and the evaluator must agree on the value.
func TestDifferentialDemo(t *testing.T) {
	pkg, err := Load("../../examples/demo")
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range pkg.Exported() {
		fn := fn
		t.Run(fn, func(t *testing.T) {
			goFn, ok := goFns[fn]
			if !ok {
				t.Fatalf("no Go dispatch for %s — extend goFns", fn)
			}
			prog, err := Lower(pkg, fn)
			if err != nil {
				t.Fatal(err)
			}
			img, err := asm.Assemble(append(libc.All(),
				asm.Source{Name: fn + ".s", Text: prog.Asm})...)
			if err != nil {
				t.Fatal(err)
			}
			for _, tu := range tuples(prog.Sig) {
				want := goFn(tu)
				ev, err := pkg.Eval(fn, tu)
				if err != nil {
					t.Fatalf("%s(%v): evaluator error: %v", fn, tu, err)
				}
				if ev.Panicked != want.panicked {
					t.Errorf("%s(%v): evaluator panicked=%v, Go %v", fn, tu, ev.Panicked, want.panicked)
				}
				if !want.panicked && want.hasRet && ev.Ret != want.ret {
					t.Errorf("%s(%v): evaluator returned %d, Go %d", fn, tu, ev.Ret, want.ret)
				}
				payload, err := EncodeArgs(prog.Sig, tu)
				if err != nil {
					t.Fatal(err)
				}
				boom, _ := replayMachine(img, prog, target.Input{Argv1: payload})
				if boom != want.panicked {
					t.Errorf("%s(%v): machine detonated=%v, Go panicked=%v", fn, tu, boom, want.panicked)
				}
			}
		})
	}
}

// TestNeverPanicsAtZero pins the benign-seed property the engine's
// exploration relies on: every exported demo function runs cleanly at
// the all-zero argument tuple, on all three semantics.
func TestNeverPanicsAtZero(t *testing.T) {
	pkg, err := Load("../../examples/demo")
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range pkg.Exported() {
		prog, err := Lower(pkg, fn)
		if err != nil {
			t.Fatalf("%s: %v", fn, err)
		}
		zero := ZeroArgs(prog.Sig)
		if res := goFns[fn](zero); res.panicked {
			t.Errorf("%s(zero): real Go panicked", fn)
		}
		ev, err := pkg.Eval(fn, zero)
		if err != nil {
			t.Fatalf("%s(zero): %v", fn, err)
		}
		if ev.Panicked {
			t.Errorf("%s(zero): evaluator panicked: %s", fn, ev.PanicMsg)
		}
		img, err := asm.Assemble(append(libc.All(),
			asm.Source{Name: fn + ".s", Text: prog.Asm})...)
		if err != nil {
			t.Fatalf("%s: %v", fn, err)
		}
		payload, err := EncodeArgs(prog.Sig, zero)
		if err != nil {
			t.Fatal(err)
		}
		if boom, site := replayMachine(img, prog, target.Input{Argv1: payload}); boom {
			t.Errorf("%s(zero): machine detonated at %q", fn, site)
		}
	}
}
