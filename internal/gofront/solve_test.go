package gofront

import (
	"context"
	"flag"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/tools"
)

var update = flag.Bool("update", false, "rewrite the golden solve report")

// solveCaps pins the engine configuration the golden report was
// captured under: the reference profile, single-worker so rounds and
// coverage are deterministic.
func solveCaps(t *testing.T) core.Capabilities {
	t.Helper()
	caps := tools.Reference().Caps
	caps.Workers = 1
	return caps
}

// TestSolveDemoGolden drives the full congolic pipeline — load, lower,
// assemble, explore, decode, both replays — over the three headline
// demo functions (branch maze, arithmetic guard, slice detonation) and
// compares the rendered report byte-for-byte against the golden file.
// Regenerate with `go test ./internal/gofront -run SolveDemoGolden -update`.
func TestSolveDemoGolden(t *testing.T) {
	pkg, err := Load("../../examples/demo")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, fn := range []string{"Unlock", "Guard", "Probe"} {
		res, err := SolvePackage(context.Background(), pkg, fn, solveCaps(t))
		if err != nil {
			t.Fatalf("%s: %v", fn, err)
		}
		if res.Outcome.Verdict != core.VerdictSolved {
			t.Fatalf("%s: verdict %s, want solved", fn, res.Outcome.Verdict)
		}
		if !res.Agreed() {
			t.Errorf("%s: machine and source semantics disagree: machine=%v replay=%+v err=%v",
				fn, res.MachineBoom, res.Replay, res.ReplayErr)
		}
		Render(&b, res)
		b.WriteString("\n")
	}
	got := b.String()
	const golden = "testdata/solve_demo.golden"
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("report drifted from %s (re-run with -update if intended):\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

// TestSolveReplaysAgree solves every remaining quickly-solvable demo
// function and asserts the differential contract on the solved tuple:
// the machine detonation and the source-level panic must coincide.
func TestSolveReplaysAgree(t *testing.T) {
	pkg, err := Load("../../examples/demo")
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range []string{"Flag", "Divide"} {
		res, err := SolvePackage(context.Background(), pkg, fn, solveCaps(t))
		if err != nil {
			t.Fatalf("%s: %v", fn, err)
		}
		if res.Outcome.Verdict != core.VerdictSolved {
			t.Fatalf("%s: verdict %s, want solved", fn, res.Outcome.Verdict)
		}
		if !res.MachineBoom {
			t.Errorf("%s: solved input does not detonate the machine", fn)
		}
		if res.ReplayErr != nil || !res.Replay.Panicked {
			t.Errorf("%s: solved input does not panic the source: %+v err=%v",
				fn, res.Replay, res.ReplayErr)
		}
	}
}

// TestSolveLoop steers the trip-count search: twenty concolic loop
// extensions from the zero seed. Skipped in -short runs.
func TestSolveLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("loop extension search is slow")
	}
	pkg, err := Load("../../examples/demo")
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolvePackage(context.Background(), pkg, "Loop", solveCaps(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Verdict != core.VerdictSolved {
		t.Fatalf("verdict %s, want solved", res.Outcome.Verdict)
	}
	if res.Args[0] != 20 {
		t.Errorf("solved n=%d, want 20 (the only trip count summing to 210)", res.Args[0])
	}
	if !res.Agreed() {
		t.Error("machine and source semantics disagree on Loop(20)")
	}
}
