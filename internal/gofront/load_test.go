package gofront

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writePkg materializes a one-file package and loads it.
func writePkg(t *testing.T, src string) (*Package, error) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return Load(dir)
}

// TestUnsupportedConstructsFailLoudly pins the frontend's contract:
// everything outside the lowered subset is rejected with an error that
// names the construct and its position — never silently mis-lowered.
func TestUnsupportedConstructsFailLoudly(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"imports", "package p\nimport \"fmt\"\nfunc F() { fmt.Println() }\n",
			"imports are outside the supported subset"},
		{"methods", "package p\nfunc (t T) M() {}\ntype T int\n",
			"methods are outside the supported subset"},
		{"package-level var", "package p\nvar g int\nfunc F() int { return g }\n",
			"package-level var declarations are outside"},
		{"string param", "package p\nfunc F(s string) {}\n",
			"outside the supported subset (int and bool only)"},
		{"float param", "package p\nfunc F(x float64) {}\n",
			"outside the supported subset (int and bool only)"},
		{"too many params", "package p\nfunc F(a, b, c, d, e, f int) {}\n",
			"at most 5 in registers"},
		{"multi result", "package p\nfunc F() (int, int) { return 1, 2 }\n",
			"at most one fits the return register"},
		{"goroutine", "package p\nfunc F() { go F() }\n",
			"unsupported statement"},
		{"select", "package p\nfunc F() { select {} }\n",
			"unsupported statement"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pkg, err := writePkg(t, c.src)
			if err == nil {
				// Signature and body violations surface at Lower time.
				_, err = Lower(pkg, "F")
			}
			if err == nil {
				t.Fatalf("%s: accepted, want rejection", c.name)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("%s: error %q, want substring %q", c.name, err, c.want)
			}
		})
	}
}

// TestUnknownFunctionSuggests pins the uniform suggestion error shared
// with the solver-mode and bomb-name parsers.
func TestUnknownFunctionSuggests(t *testing.T) {
	pkg, err := writePkg(t, "package p\nfunc Unlock(a int) {}\nfunc Guard(n int) {}\n")
	if err != nil {
		t.Fatal(err)
	}
	_, err = pkg.Target("Unlok")
	if err == nil {
		t.Fatal("Target(Unlok) succeeded")
	}
	want := `unknown function "Unlok" (valid: Guard, Unlock) — did you mean "Unlock"?`
	if err.Error() != want {
		t.Errorf("error %q, want %q", err, want)
	}
}

// TestConstantsAndHelpersLoad pins the accepted end of the subset:
// package-level consts fold, unexported helpers lower transitively.
func TestConstantsAndHelpersLoad(t *testing.T) {
	pkg, err := writePkg(t, `package p

const key = 41

func double(x int) int { return 2 * x }

func F(n int) {
	if double(n) == key+1 {
		panic("hit")
	}
}
`)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Lower(pkg, "F")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.Asm, "go_double:") {
		t.Error("helper double was not lowered")
	}
	if len(prog.PanicSites) != 1 {
		t.Errorf("panic sites %v, want exactly the explicit panic", prog.PanicSites)
	}
	res, err := pkg.Eval("F", []int64{21})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Panicked {
		t.Error("F(21) did not panic in the reference evaluator")
	}
}
