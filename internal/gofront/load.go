// Package gofront is the Go frontend: it loads a Go package with the
// standard library's parser and type checker, lowers a supported subset
// of it to LB64 assembly, and drives the unmodified concolic engine to
// generate test inputs — argument tuples that make a chosen function
// panic. Panics (explicit panic calls, out-of-range indexing, division
// by zero, negative shift counts) become detonation sites: each lowers
// to a call of the engine's canonical `bomb` symbol.
//
// The container this suite builds in has no module cache, so the
// golang.org/x/tools go/ssa package is unavailable; the frontend
// instead lowers the type-checked AST directly. The lowered subset is
// exactly the SSA subset documented in DESIGN.md §18 — if/jump and phi
// nodes appear here as structured control flow whose join points carry
// the phi values in stack slots. Every construct outside the subset is
// rejected loudly with its source position.
package gofront

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/suggest"
)

// Package is a loaded, type-checked Go package.
type Package struct {
	Name  string
	Fset  *token.FileSet
	Info  *types.Info
	Funcs map[string]*ast.FuncDecl
	Order []string // function names in source order
}

// Load parses and type-checks every non-test .go file in dir. Imports
// are rejected: the lowered subset is self-contained by construction
// (the guest has its own libc, not Go's runtime).
func Load(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("gofront: %w", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("gofront: %w", err)
		}
		files = append(files, f)
		names = append(names, n)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("gofront: no Go files in %s", dir)
	}
	for _, f := range files {
		if len(f.Imports) > 0 {
			p := fset.Position(f.Imports[0].Pos())
			return nil, fmt.Errorf("gofront: %s: imports are outside the supported subset "+
				"(the lowered program runs against the guest libc, not the Go runtime)", p)
		}
	}
	pkg := &Package{
		Fset:  fset,
		Info:  &types.Info{Types: map[ast.Expr]types.TypeAndValue{}, Defs: map[*ast.Ident]types.Object{}, Uses: map[*ast.Ident]types.Object{}},
		Funcs: map[string]*ast.FuncDecl{},
	}
	conf := types.Config{Importer: importer.Default()}
	tpkg, err := conf.Check(dir, fset, files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("gofront: %w", err)
	}
	pkg.Name = tpkg.Name()
	for _, f := range files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Recv != nil {
					p := fset.Position(d.Pos())
					return nil, fmt.Errorf("gofront: %s: methods are outside the supported subset", p)
				}
				pkg.Funcs[d.Name.Name] = d
				pkg.Order = append(pkg.Order, d.Name.Name)
			case *ast.GenDecl:
				switch d.Tok {
				case token.CONST:
					// Constants fold into expressions via the type
					// checker; nothing to lower.
				case token.IMPORT:
					// Unreachable: rejected above.
				default:
					p := fset.Position(d.Pos())
					return nil, fmt.Errorf("gofront: %s: package-level %s declarations are outside "+
						"the supported subset (globals would need a data segment the lowering does not emit)",
						p, d.Tok)
				}
			}
		}
	}
	return pkg, nil
}

// Target resolves a function by name, with the uniform suggestion error
// on a miss.
func (p *Package) Target(name string) (*ast.FuncDecl, error) {
	if fn, ok := p.Funcs[name]; ok {
		return fn, nil
	}
	valid := append([]string(nil), p.Order...)
	sort.Strings(valid)
	return nil, suggest.Unknown("function", name, valid)
}

// Exported returns the exported function names, in source order.
func (p *Package) Exported() []string {
	var out []string
	for _, n := range p.Order {
		if ast.IsExported(n) {
			out = append(out, n)
		}
	}
	return out
}

// errAt builds a subset-violation error carrying the source position.
func (p *Package) errAt(pos token.Pos, format string, args ...any) error {
	return fmt.Errorf("gofront: %s: %s", p.Fset.Position(pos), fmt.Sprintf(format, args...))
}
