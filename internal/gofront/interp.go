package gofront

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// The interpreter is the frontend's concrete reference semantics: a
// direct evaluator over the type-checked AST, covering exactly the
// lowered subset. Solved inputs replay through it to check that the
// machine-level exploration and the source-level meaning agree — the
// differential oracle for the lowering.

// EvalResult is the outcome of one concrete evaluation.
type EvalResult struct {
	Ret      int64 // meaningful when HasRet
	HasRet   bool
	Panicked bool
	PanicMsg string
	Steps    int
}

// goPanic carries a Go-semantics panic through the evaluator.
type goPanic struct{ msg string }

// evalBudget bounds total evaluation steps so non-terminating loops
// surface as errors rather than hangs.
const evalBudget = 5_000_000

// Eval runs fn concretely on args (bools as 0/1).
func (p *Package) Eval(fn string, args []int64) (res EvalResult, err error) {
	decl, err := p.Target(fn)
	if err != nil {
		return res, err
	}
	sig, err := p.checkSig(decl)
	if err != nil {
		return res, err
	}
	if len(args) != len(sig.Params) {
		return res, fmt.Errorf("gofront: %s takes %d arguments, got %d", fn, len(sig.Params), len(args))
	}
	ev := &evaluator{pkg: p, budget: evalBudget}
	defer func() {
		if r := recover(); r != nil {
			gp, ok := r.(goPanic)
			if !ok {
				panic(r)
			}
			res = EvalResult{Panicked: true, PanicMsg: gp.msg, Steps: evalBudget - ev.budget}
		}
	}()
	ret, hasRet, err := ev.callFunc(decl, args)
	if err != nil {
		return res, err
	}
	return EvalResult{Ret: ret, HasRet: hasRet, Steps: evalBudget - ev.budget}, nil
}

type evaluator struct {
	pkg    *Package
	budget int
}

// frame is one function activation: scalars and arrays by object.
type frame struct {
	vars   map[types.Object]int64
	arrays map[types.Object][]int64
}

// control-flow signals, propagated as error values so the evaluator's
// plumbing stays explicit.
type ctlSignal uint8

const (
	ctlNone ctlSignal = iota
	ctlReturn
	ctlBreak
	ctlContinue
)

func (e *evaluator) step(pos token.Pos) error {
	e.budget--
	if e.budget <= 0 {
		return fmt.Errorf("gofront: evaluation budget exhausted at %s", e.pkg.Fset.Position(pos))
	}
	return nil
}

func (e *evaluator) callFunc(decl *ast.FuncDecl, args []int64) (int64, bool, error) {
	if err := e.step(decl.Pos()); err != nil {
		return 0, false, err
	}
	fr := &frame{vars: map[types.Object]int64{}, arrays: map[types.Object][]int64{}}
	i := 0
	for _, field := range decl.Type.Params.List {
		for _, id := range field.Names {
			fr.vars[e.pkg.Info.Defs[id]] = args[i]
			i++
		}
	}
	ctl, ret, err := e.stmts(fr, decl.Body.List)
	if err != nil {
		return 0, false, err
	}
	hasRet := ctl == ctlReturn && decl.Type.Results != nil && len(decl.Type.Results.List) > 0
	return ret, hasRet, nil
}

func (e *evaluator) stmts(fr *frame, list []ast.Stmt) (ctlSignal, int64, error) {
	for _, s := range list {
		ctl, ret, err := e.stmt(fr, s)
		if err != nil || ctl != ctlNone {
			return ctl, ret, err
		}
	}
	return ctlNone, 0, nil
}

func (e *evaluator) stmt(fr *frame, s ast.Stmt) (ctlSignal, int64, error) {
	if err := e.step(s.Pos()); err != nil {
		return ctlNone, 0, err
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return e.stmts(fr, s.List)

	case *ast.DeclStmt:
		gd := s.Decl.(*ast.GenDecl)
		for _, spec := range gd.Specs {
			vs := spec.(*ast.ValueSpec)
			for i, id := range vs.Names {
				var init ast.Expr
				if i < len(vs.Values) {
					init = vs.Values[i]
				}
				if err := e.declare(fr, id, init); err != nil {
					return ctlNone, 0, err
				}
			}
		}
		return ctlNone, 0, nil

	case *ast.AssignStmt:
		if s.Tok == token.DEFINE {
			if err := e.declare(fr, s.Lhs[0].(*ast.Ident), s.Rhs[0]); err != nil {
				return ctlNone, 0, err
			}
			return ctlNone, 0, nil
		}
		var err error
		if s.Tok == token.ASSIGN {
			err = e.store(fr, s.Lhs[0], func() (int64, error) { return e.expr(fr, s.Rhs[0]) })
		} else {
			op := compoundOps[s.Tok]
			err = e.store(fr, s.Lhs[0], func() (int64, error) {
				l, lerr := e.expr(fr, s.Lhs[0])
				if lerr != nil {
					return 0, lerr
				}
				r, rerr := e.expr(fr, s.Rhs[0])
				if rerr != nil {
					return 0, rerr
				}
				return e.binop(op, l, r, s.Pos())
			})
		}
		return ctlNone, 0, err

	case *ast.IncDecStmt:
		delta := int64(1)
		if s.Tok == token.DEC {
			delta = -1
		}
		err := e.store(fr, s.X, func() (int64, error) {
			v, verr := e.expr(fr, s.X)
			return v + delta, verr
		})
		return ctlNone, 0, err

	case *ast.IfStmt:
		if s.Init != nil {
			if ctl, ret, err := e.stmt(fr, s.Init); err != nil || ctl != ctlNone {
				return ctl, ret, err
			}
		}
		c, err := e.expr(fr, s.Cond)
		if err != nil {
			return ctlNone, 0, err
		}
		if c != 0 {
			return e.stmts(fr, s.Body.List)
		}
		if s.Else != nil {
			return e.stmt(fr, s.Else)
		}
		return ctlNone, 0, nil

	case *ast.ForStmt:
		if s.Init != nil {
			if ctl, ret, err := e.stmt(fr, s.Init); err != nil || ctl != ctlNone {
				return ctl, ret, err
			}
		}
		for {
			if err := e.step(s.Pos()); err != nil {
				return ctlNone, 0, err
			}
			if s.Cond != nil {
				c, err := e.expr(fr, s.Cond)
				if err != nil {
					return ctlNone, 0, err
				}
				if c == 0 {
					break
				}
			}
			ctl, ret, err := e.stmts(fr, s.Body.List)
			if err != nil {
				return ctlNone, 0, err
			}
			if ctl == ctlReturn {
				return ctl, ret, nil
			}
			if ctl == ctlBreak {
				break
			}
			if s.Post != nil {
				if ctl, ret, err := e.stmt(fr, s.Post); err != nil || ctl != ctlNone {
					return ctl, ret, err
				}
			}
		}
		return ctlNone, 0, nil

	case *ast.BranchStmt:
		if s.Tok == token.BREAK {
			return ctlBreak, 0, nil
		}
		return ctlContinue, 0, nil

	case *ast.ReturnStmt:
		if len(s.Results) == 1 {
			v, err := e.expr(fr, s.Results[0])
			return ctlReturn, v, err
		}
		return ctlReturn, 0, nil

	case *ast.ExprStmt:
		call := s.X.(*ast.CallExpr)
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
			if _, isFunc := e.pkg.Info.Uses[id].(*types.Func); !isFunc {
				panic(goPanic{msg: strings.TrimPrefix(panicDesc(call, e.pkg.Fset), "panic: ")})
			}
		}
		_, err := e.expr(fr, call)
		return ctlNone, 0, err

	default:
		return ctlNone, 0, e.pkg.errAt(s.Pos(), "unsupported statement %T", s)
	}
}

func (e *evaluator) declare(fr *frame, id *ast.Ident, init ast.Expr) error {
	obj := e.pkg.Info.Defs[id]
	if obj == nil && id.Name == "_" {
		if init != nil {
			_, err := e.expr(fr, init)
			return err
		}
		return nil
	}
	if arr, ok := obj.Type().Underlying().(*types.Array); ok {
		return e.declareArray(fr, obj, int(arr.Len()), init)
	}
	if _, ok := obj.Type().Underlying().(*types.Slice); ok {
		lit, ok := init.(*ast.CompositeLit)
		if !ok {
			return e.pkg.errAt(id.Pos(), "slice %s: only composite-literal slices are supported", id.Name)
		}
		return e.declareArray(fr, obj, len(lit.Elts), init)
	}
	var v int64
	if init != nil {
		var err error
		if v, err = e.expr(fr, init); err != nil {
			return err
		}
	}
	fr.vars[obj] = v
	return nil
}

func (e *evaluator) declareArray(fr *frame, obj types.Object, n int, init ast.Expr) error {
	vals := make([]int64, n)
	if init != nil {
		lit := init.(*ast.CompositeLit)
		for i, el := range lit.Elts {
			v, err := e.expr(fr, el)
			if err != nil {
				return err
			}
			vals[i] = v
		}
	}
	fr.arrays[obj] = vals
	return nil
}

// store writes rhs() into an lvalue, indexing with Go bounds semantics.
func (e *evaluator) store(fr *frame, lhs ast.Expr, rhs func() (int64, error)) error {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		v, err := rhs()
		if err != nil {
			return err
		}
		if lhs.Name == "_" {
			return nil
		}
		obj := e.pkg.Info.Uses[lhs]
		if obj == nil {
			obj = e.pkg.Info.Defs[lhs]
		}
		fr.vars[obj] = v
		return nil
	case *ast.IndexExpr:
		v, err := rhs()
		if err != nil {
			return err
		}
		arr, idx, err := e.index(fr, lhs)
		if err != nil {
			return err
		}
		arr[idx] = v
		return nil
	}
	return e.pkg.errAt(lhs.Pos(), "unsupported assignment target %T", lhs)
}

// index resolves arr[i] with the bounds panic.
func (e *evaluator) index(fr *frame, ix *ast.IndexExpr) ([]int64, int64, error) {
	id := ix.X.(*ast.Ident)
	obj := e.pkg.Info.Uses[id]
	if obj == nil {
		obj = e.pkg.Info.Defs[id]
	}
	arr, ok := fr.arrays[obj]
	if !ok {
		return nil, 0, e.pkg.errAt(id.Pos(), "%s is not a local array", id.Name)
	}
	i, err := e.expr(fr, ix.Index)
	if err != nil {
		return nil, 0, err
	}
	if i < 0 || i >= int64(len(arr)) {
		panic(goPanic{msg: fmt.Sprintf("runtime error: index out of range (len %d)", len(arr))})
	}
	return arr, i, nil
}

func (e *evaluator) expr(fr *frame, x ast.Expr) (int64, error) {
	if err := e.step(x.Pos()); err != nil {
		return 0, err
	}
	if tv, ok := e.pkg.Info.Types[x]; ok && tv.Value != nil {
		return constInt(tv.Value, e.pkg, x.Pos())
	}
	switch x := x.(type) {
	case *ast.ParenExpr:
		return e.expr(fr, x.X)

	case *ast.Ident:
		obj := e.pkg.Info.Uses[x]
		if obj == nil {
			obj = e.pkg.Info.Defs[x]
		}
		v, ok := fr.vars[obj]
		if !ok {
			if _, isArr := fr.arrays[obj]; isArr {
				return 0, e.pkg.errAt(x.Pos(), "arrays are only indexed or measured, not passed")
			}
			return 0, e.pkg.errAt(x.Pos(), "%s is not a local of this function", x.Name)
		}
		return v, nil

	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			l, err := e.expr(fr, x.X)
			if err != nil || l == 0 {
				return 0, err
			}
			return e.expr(fr, x.Y)
		case token.LOR:
			l, err := e.expr(fr, x.X)
			if err != nil || l != 0 {
				return boolInt(l != 0), err
			}
			return e.expr(fr, x.Y)
		}
		l, err := e.expr(fr, x.X)
		if err != nil {
			return 0, err
		}
		r, err := e.expr(fr, x.Y)
		if err != nil {
			return 0, err
		}
		return e.binop(x.Op, l, r, x.OpPos)

	case *ast.UnaryExpr:
		v, err := e.expr(fr, x.X)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case token.SUB:
			return -v, nil
		case token.XOR:
			return ^v, nil
		case token.NOT:
			return v ^ 1, nil
		case token.ADD:
			return v, nil
		}
		return 0, e.pkg.errAt(x.Pos(), "unsupported unary operator %s", x.Op)

	case *ast.IndexExpr:
		arr, i, err := e.index(fr, x)
		if err != nil {
			return 0, err
		}
		return arr[i], nil

	case *ast.BasicLit:
		// Synthetic nodes only; real literals fold above.
		v := constant.MakeFromLiteral(x.Value, x.Kind, 0)
		return constInt(v, e.pkg, x.Pos())

	case *ast.CallExpr:
		id, ok := x.Fun.(*ast.Ident)
		if !ok {
			return 0, e.pkg.errAt(x.Fun.Pos(), "unsupported call target %T", x.Fun)
		}
		if _, isBuiltin := e.pkg.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "len" {
			aid, ok := x.Args[0].(*ast.Ident)
			if !ok {
				return 0, e.pkg.errAt(x.Args[0].Pos(), "len of %T is outside the supported subset", x.Args[0])
			}
			obj := e.pkg.Info.Uses[aid]
			arr, ok := fr.arrays[obj]
			if !ok {
				return 0, e.pkg.errAt(aid.Pos(), "len of %s: not a local array or slice literal", aid.Name)
			}
			return int64(len(arr)), nil
		}
		decl, ok := e.pkg.Funcs[id.Name]
		if !ok {
			return 0, e.pkg.errAt(x.Pos(), "call to %s is outside the supported subset", id.Name)
		}
		args := make([]int64, len(x.Args))
		for i, a := range x.Args {
			v, err := e.expr(fr, a)
			if err != nil {
				return 0, err
			}
			args[i] = v
		}
		ret, _, err := e.callFunc(decl, args)
		return ret, err

	default:
		return 0, e.pkg.errAt(x.Pos(), "unsupported expression %T", x)
	}
}

// binop applies a binary operator with Go's runtime semantics — the
// single place those semantics live for the interpreter, mirrored
// instruction-for-instruction by the lowering in binary().
func (e *evaluator) binop(op token.Token, l, r int64, pos token.Pos) (int64, error) {
	switch op {
	case token.ADD:
		return l + r, nil
	case token.SUB:
		return l - r, nil
	case token.MUL:
		return l * r, nil
	case token.QUO:
		if r == 0 {
			panic(goPanic{msg: "runtime error: integer divide by zero (integer division)"})
		}
		return l / r, nil
	case token.REM:
		if r == 0 {
			panic(goPanic{msg: "runtime error: integer divide by zero (integer remainder)"})
		}
		return l % r, nil
	case token.AND:
		return l & r, nil
	case token.OR:
		return l | r, nil
	case token.XOR:
		return l ^ r, nil
	case token.AND_NOT:
		return l &^ r, nil
	case token.SHL:
		if r < 0 {
			panic(goPanic{msg: "runtime error: negative shift amount"})
		}
		if r >= 64 {
			return 0, nil
		}
		return l << uint(r), nil
	case token.SHR:
		if r < 0 {
			panic(goPanic{msg: "runtime error: negative shift amount"})
		}
		if r >= 64 {
			return l >> 63, nil
		}
		return l >> uint(r), nil
	case token.EQL:
		return boolInt(l == r), nil
	case token.NEQ:
		return boolInt(l != r), nil
	case token.LSS:
		return boolInt(l < r), nil
	case token.LEQ:
		return boolInt(l <= r), nil
	case token.GTR:
		return boolInt(l > r), nil
	case token.GEQ:
		return boolInt(l >= r), nil
	}
	return 0, e.pkg.errAt(pos, "unsupported binary operator %s", op)
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
