package gofront

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/bin"
	"repro/internal/core"
	"repro/internal/gos"
	"repro/internal/libc"
	"repro/internal/target"
)

// Result is the outcome of exploring one Go function: the engine's
// verdict, the decoded argument tuple when solved, and both replays —
// the lowered machine run and the source-level reference evaluation —
// which must agree for the result to be trusted.
type Result struct {
	Prog    *Program
	Outcome *core.Outcome

	// Args is the decoded solving argument tuple (bools as 0/1),
	// non-nil exactly when the verdict is Solved.
	Args []int64

	// MachineBoom reports whether replaying the solved input on the
	// lowered image detonated (exit 42 + BOOM).
	MachineBoom bool
	// MachineSite names the detonation site the machine replay hit
	// (from the bomb return address), empty if it cannot be attributed.
	MachineSite string

	// Replay is the concrete source-level evaluation of Args.
	Replay EvalResult
	// ReplayErr is non-nil when the reference evaluation itself failed
	// (subset violation or budget), as opposed to panicking.
	ReplayErr error
}

// Agreed reports whether machine and reference semantics agree on the
// solved input: both detonate, or neither does.
func (r *Result) Agreed() bool {
	if r.Args == nil {
		return true // nothing to compare
	}
	if r.ReplayErr != nil {
		return false
	}
	return r.MachineBoom == r.Replay.Panicked
}

// Caps derives engine capabilities for a lowered Go function from a
// base profile. The payload codec is total — every byte decodes — so
// the argv terminator and padding channels are disabled and the
// argument length is pinned to the signature's exact footprint: the
// solver explores argument values, never argument shapes.
func Caps(base core.Capabilities, sig *Sig) core.Capabilities {
	caps := base
	caps.Sym.Spec.ArgvNUL = false
	caps.Sym.Spec.ArgvPad = 0
	caps.GrowArgv = false
	caps.MaxArgvLen = sig.PayloadLen()
	return caps
}

// Solve lowers fn from the package in dir and directs the engine at
// its detonation sites, starting from the all-zero argument tuple.
func Solve(ctx context.Context, dir, fn string, base core.Capabilities) (*Result, error) {
	pkg, err := Load(dir)
	if err != nil {
		return nil, err
	}
	return SolvePackage(ctx, pkg, fn, base)
}

// SolvePackage is Solve for an already-loaded package.
func SolvePackage(ctx context.Context, pkg *Package, fn string, base core.Capabilities) (*Result, error) {
	prog, err := Lower(pkg, fn)
	if err != nil {
		return nil, err
	}
	img, err := asm.Assemble(append(libc.All(), asm.Source{Name: "go_" + fn + ".s", Text: prog.Asm})...)
	if err != nil {
		return nil, fmt.Errorf("gofront: assembling lowered %s: %w", fn, err)
	}
	bombAddr, ok := img.Symbol("bomb")
	if !ok {
		return nil, fmt.Errorf("gofront: lowered image has no bomb symbol")
	}

	seedPayload, err := EncodeArgs(prog.Sig, ZeroArgs(prog.Sig))
	if err != nil {
		return nil, err
	}
	en := core.New(img, bombAddr, Caps(base, prog.Sig))
	out := en.ExploreContext(ctx, target.Input{Argv1: seedPayload})

	res := &Result{Prog: prog, Outcome: out}
	if out.Verdict == core.VerdictSolved {
		res.Args = DecodeArgs(prog.Sig, out.Input.Argv1)
		res.MachineBoom, res.MachineSite = replayMachine(img, prog, out.Input)
		res.Replay, res.ReplayErr = pkg.Eval(fn, res.Args)
	}
	return res, nil
}

// replayMachine runs the solved input concretely on the lowered image
// and attributes the detonation to a panic site: each site's global
// label address is watched, and the one the run executed names the
// source-level panic that fired.
func replayMachine(img *bin.Image, prog *Program, in target.Input) (bool, string) {
	cfg := in.Config()
	cfg.MaxSteps = 5_000_000
	sites := map[uint64]string{}
	for label := range prog.PanicSites {
		if addr, ok := img.Symbol(label); ok {
			sites[addr] = label
			cfg.WatchAddrs = append(cfg.WatchAddrs, addr)
		}
	}
	m, err := gos.New(img, cfg)
	if err != nil {
		return false, ""
	}
	r := m.Run()
	if !(r.ExitStatus == 42 && strings.Contains(r.Stdout, "BOOM")) {
		return false, ""
	}
	for addr, hit := range r.Watched {
		if hit {
			if desc, ok := prog.PanicSites[sites[addr]]; ok {
				return true, desc
			}
		}
	}
	return true, ""
}

// Render writes the human-readable solve report.
func Render(w *strings.Builder, res *Result) {
	prog, out := res.Prog, res.Outcome
	fmt.Fprintf(w, "func %s\n", prog.Sig)
	fmt.Fprintf(w, "detonation sites: %d\n", len(prog.PanicSites))
	for _, line := range prog.SortedPanicSites() {
		fmt.Fprintf(w, "  %s\n", line)
	}
	fmt.Fprintf(w, "verdict=%s rounds=%d\n", out.Verdict, out.Rounds)
	if res.Args == nil {
		return
	}
	parts := make([]string, len(res.Args))
	for i, v := range res.Args {
		if prog.Sig.Params[i] == KindBool {
			parts[i] = fmt.Sprintf("%s=%v", prog.Sig.Names[i], v != 0)
		} else {
			parts[i] = fmt.Sprintf("%s=%d", prog.Sig.Names[i], v)
		}
	}
	fmt.Fprintf(w, "solved args: %s(%s)\n", prog.Sig.Name, strings.Join(parts, ", "))
	if res.MachineSite != "" {
		fmt.Fprintf(w, "machine replay: detonated at %s\n", res.MachineSite)
	} else {
		fmt.Fprintf(w, "machine replay: detonated=%v\n", res.MachineBoom)
	}
	switch {
	case res.ReplayErr != nil:
		fmt.Fprintf(w, "source replay: error: %v\n", res.ReplayErr)
	case res.Replay.Panicked:
		fmt.Fprintf(w, "source replay: panic: %s\n", res.Replay.PanicMsg)
	case res.Replay.HasRet:
		fmt.Fprintf(w, "source replay: returned %d (no panic)\n", res.Replay.Ret)
	default:
		fmt.Fprintf(w, "source replay: returned (no panic)\n")
	}
	fmt.Fprintf(w, "semantics agree: %v\n", res.Agreed())
	fmt.Fprintf(w, "coverage: %d blocks, %d edges\n", out.Stats.CoveredBlocks, out.Stats.CoveredEdges)
}
