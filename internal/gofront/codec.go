package gofront

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Kind is a supported parameter/result type.
type Kind uint8

// Supported kinds: 64-bit signed integers and booleans.
const (
	KindInt Kind = iota
	KindBool
)

func (k Kind) String() string {
	if k == KindBool {
		return "bool"
	}
	return "int"
}

// width is the payload footprint in bytes: 16 nibble characters per
// int, 1 character per bool.
func (k Kind) width() int {
	if k == KindBool {
		return 1
	}
	return 16
}

// Sig is a lowered function signature.
type Sig struct {
	Name   string
	Params []Kind
	Names  []string // parameter names, for rendering
	Result *Kind    // nil for no result
}

// String renders the signature in Go syntax.
func (s *Sig) String() string {
	out := s.Name + "("
	for i, p := range s.Params {
		if i > 0 {
			out += ", "
		}
		out += s.Names[i] + " " + p.String()
	}
	out += ")"
	if s.Result != nil {
		out += " " + s.Result.String()
	}
	return out
}

// PayloadLen is the total argv byte budget for the signature.
func (s *Sig) PayloadLen() int {
	n := 0
	for _, p := range s.Params {
		n += p.width()
	}
	return n
}

// maxParams is the register budget: the LB64 calling convention passes
// arguments in r1..r5.
const maxParams = 5

// checkSig validates that fn's signature is inside the supported
// subset and converts it.
func (p *Package) checkSig(fn *ast.FuncDecl) (*Sig, error) {
	obj, ok := p.Info.Defs[fn.Name].(*types.Func)
	if !ok {
		return nil, p.errAt(fn.Pos(), "no type information for %s", fn.Name.Name)
	}
	t := obj.Type().(*types.Signature)
	sig := &Sig{Name: fn.Name.Name}
	if t.Params().Len() > maxParams {
		return nil, p.errAt(fn.Pos(), "%s has %d parameters; the LB64 calling convention passes at most %d in registers",
			fn.Name.Name, t.Params().Len(), maxParams)
	}
	for i := 0; i < t.Params().Len(); i++ {
		v := t.Params().At(i)
		k, err := kindOf(v.Type())
		if err != nil {
			return nil, p.errAt(fn.Pos(), "parameter %s of %s: %v", v.Name(), fn.Name.Name, err)
		}
		sig.Params = append(sig.Params, k)
		sig.Names = append(sig.Names, v.Name())
	}
	switch t.Results().Len() {
	case 0:
	case 1:
		k, err := kindOf(t.Results().At(0).Type())
		if err != nil {
			return nil, p.errAt(fn.Pos(), "result of %s: %v", fn.Name.Name, err)
		}
		sig.Result = &k
	default:
		return nil, p.errAt(fn.Pos(), "%s returns %d values; at most one fits the return register",
			fn.Name.Name, t.Results().Len())
	}
	return sig, nil
}

// kindOf maps a Go type onto a supported kind.
func kindOf(t types.Type) (Kind, error) {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return 0, fmt.Errorf("type %s is outside the supported subset (int and bool only)", t)
	}
	switch b.Kind() {
	case types.Int, types.Int64:
		return KindInt, nil
	case types.Bool, types.UntypedBool:
		return KindBool, nil
	}
	return 0, fmt.Errorf("type %s is outside the supported subset (int and bool only)", t)
}

// The payload codec maps Go argument tuples onto argv bytes and back.
//
// The engine's input reconstruction truncates a solved argument string
// at its first NUL byte, and the guest reads zeros past the end of the
// argv block — so the codec must give every byte value a meaning and
// give the byte 0 the same meaning as a missing byte. Nibble characters
// 'a'..'p' encode 4 bits per byte; decoding is total and branchless:
// (b-'a')&15, under which both 0 and a truncated-away byte decode to
// nibble 15, matching the zeros the machine reads past the string end.
// Booleans use one byte, decoded (b-'a')&1.

// EncodeArgs renders an argument tuple as a payload string. Bools are
// 0/1 in vals.
func EncodeArgs(sig *Sig, vals []int64) (string, error) {
	if len(vals) != len(sig.Params) {
		return "", fmt.Errorf("gofront: %s takes %d arguments, got %d", sig.Name, len(sig.Params), len(vals))
	}
	buf := make([]byte, 0, sig.PayloadLen())
	for i, k := range sig.Params {
		switch k {
		case KindBool:
			buf = append(buf, byte('a'+(vals[i]&1)))
		default:
			v := uint64(vals[i])
			for sh := 60; sh >= 0; sh -= 4 {
				buf = append(buf, byte('a'+(v>>uint(sh))&15))
			}
		}
	}
	return string(buf), nil
}

// DecodeArgs recovers the argument tuple from a payload string. Bytes
// past len(payload) read as 0, mirroring the machine's view of memory
// beyond the argv string.
func DecodeArgs(sig *Sig, payload string) []int64 {
	at := func(i int) byte {
		if i < len(payload) {
			return payload[i]
		}
		return 0
	}
	vals := make([]int64, len(sig.Params))
	pos := 0
	for i, k := range sig.Params {
		switch k {
		case KindBool:
			vals[i] = int64((at(pos) - 'a') & 1)
			pos++
		default:
			var v uint64
			for j := 0; j < 16; j++ {
				v = v<<4 | uint64((at(pos)-'a')&15)
				pos++
			}
			vals[i] = int64(v)
		}
	}
	return vals
}

// ZeroArgs is the benign seed: every argument at its zero value.
func ZeroArgs(sig *Sig) []int64 { return make([]int64, len(sig.Params)) }
